"""Entity-level messaging fabric over the simulated network.

Entities ("client0", "osd.5", "mon") live on network hosts; the fabric
routes messages between them, charging the sender's and receiver's TCP
stack costs and the wire transfer.  Co-located entities (two OSDs on the
same server) short-circuit through loopback at memory-copy cost.

Long-lived connections are assumed (as in Ceph's messenger, which keeps
sessions open), so no per-op handshake is charged.

The :class:`Messenger` base class adds request/reply correlation: ops
carry ids, replies resolve the matching pending event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import NetworkError
from ..sim import Environment, Event, Store
from ..units import transfer_ns, us
from .ops import OsdOp, OsdReply
from ..net.message import Message
from ..net.stack import KERNEL_TCP, StackProfile
from ..net.topology import Network

#: Loopback latency for same-host delivery.
LOOPBACK_NS = us(2)
#: Memory bandwidth used for loopback copies.
LOOPBACK_BW = 10e9  # bytes/sec


@dataclass
class Envelope:
    """What a receiver pulls from its fabric inbox."""

    src: str
    payload: Any
    size: int


class Fabric:
    """Routes entity-to-entity messages across the network."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self._entity_host: dict[str, str] = {}
        self._entity_stack: dict[str, StackProfile] = {}
        self._inbox: dict[str, Store] = {}

    def register(self, entity: str, host: str, stack: StackProfile = KERNEL_TCP) -> None:
        """Bind an entity name to a network host and a TCP stack profile."""
        if entity in self._entity_host:
            raise NetworkError(f"entity {entity!r} already registered")
        self.network.host(host)  # validate
        self._entity_host[entity] = host
        self._entity_stack[entity] = stack
        self._inbox[entity] = Store(self.env, name=f"fabric:{entity}")

    def set_stack(self, entity: str, stack: StackProfile) -> None:
        """Swap an entity's stack profile (framework configuration)."""
        if entity not in self._entity_stack:
            raise NetworkError(f"unknown entity {entity!r}")
        self._entity_stack[entity] = stack

    def host_of(self, entity: str) -> str:
        """Network host an entity lives on."""
        if entity not in self._entity_host:
            raise NetworkError(f"unknown entity {entity!r}")
        return self._entity_host[entity]

    def send(self, src: str, dst: str, nbytes: int, payload: Any) -> Generator:
        """Process: deliver ``payload`` from ``src`` to ``dst``.

        Completes when the receiver's stack has processed the message and
        it sits in the destination inbox.
        """
        src_host = self.host_of(src)
        dst_host = self.host_of(dst)
        if src_host == dst_host:
            yield self.env.timeout(LOOPBACK_NS + transfer_ns(nbytes, LOOPBACK_BW))
        else:
            yield self.env.timeout(self._entity_stack[src].tx_ns(nbytes))
            msg = Message(src_host, dst_host, nbytes, payload=(src, dst))
            yield self.env.process(self.network.send(msg))
            yield self.network.host(dst_host).inbox.get(lambda m: m.msg_id == msg.msg_id)
            yield self.env.timeout(self._entity_stack[dst].rx_ns(nbytes))
        yield self._inbox[dst].put(Envelope(src, payload, nbytes))

    def send_async(self, src: str, dst: str, nbytes: int, payload: Any):
        """Fire-and-forget send (returns the delivery process event)."""
        return self.env.process(self.send(src, dst, nbytes, payload), name=f"{src}->{dst}")

    def recv(self, entity: str):
        """Event yielding the next :class:`Envelope` for ``entity``."""
        if entity not in self._inbox:
            raise NetworkError(f"unknown entity {entity!r}")
        return self._inbox[entity].get()


class Messenger:
    """Request/reply correlation for one entity on the fabric."""

    def __init__(self, env: Environment, fabric: Fabric, entity: str):
        self.env = env
        self.fabric = fabric
        self.entity = entity
        self._pending: dict[int, Event] = {}
        self._loop_proc = None

    def start(self) -> None:
        """Spawn the demux loop (idempotent)."""
        if self._loop_proc is None:
            self._loop_proc = self.env.process(self._demux(), name=f"msgr:{self.entity}")

    def stop(self) -> None:
        """Kill the demux loop (simulates entity crash)."""
        if self._loop_proc is not None and self._loop_proc.is_alive:
            self._loop_proc.interrupt("stopped")
        self._loop_proc = None

    def _demux(self) -> Generator:
        while True:
            envelope = yield self.fabric.recv(self.entity)
            payload = envelope.payload
            if isinstance(payload, OsdReply):
                pending = self._pending.pop(payload.op_id, None)
                if pending is not None:
                    pending.succeed(payload)
            else:
                self.env.process(
                    self.on_request(payload, envelope.src),
                    name=f"{self.entity}:op{getattr(payload, 'op_id', '?')}",
                )

    def call(self, dst: str, op: OsdOp, timeout_ns: Optional[int] = None) -> Generator:
        """Process: send ``op`` and wait for its reply (returned).

        With ``timeout_ns``, a reply that does not arrive in time yields
        a synthetic failed :class:`OsdReply` with error "timeout" — the
        caller decides whether to retry against a newer map.
        """
        ev = self.env.event()
        self._pending[op.op_id] = ev
        yield from self.fabric.send(self.entity, dst, op.wire_size(), op)
        if timeout_ns is None:
            reply = yield ev
            return reply
        deadline = self.env.timeout(timeout_ns)
        results = yield self.env.any_of([ev, deadline])
        if ev in results:
            return results[ev]
        self._pending.pop(op.op_id, None)
        return OsdReply(op.op_id, False, error=f"timeout after {timeout_ns} ns")

    def reply_to(self, dst: str, reply: OsdReply) -> Generator:
        """Process: send a reply back to the requester."""
        yield from self.fabric.send(self.entity, dst, reply.wire_size(), reply)

    def on_request(self, op: OsdOp, src: str) -> Generator:
        """Handle an incoming request (override in daemons)."""
        raise NotImplementedError(f"{self.entity} received unexpected request {op!r}")
        yield  # pragma: no cover
