"""Entity-level messaging fabric over the simulated network.

Entities ("client0", "osd.5", "mon") live on network hosts; the fabric
routes messages between them, charging the sender's and receiver's TCP
stack costs and the wire transfer.  Co-located entities (two OSDs on the
same server) short-circuit through loopback at memory-copy cost.

Long-lived connections are assumed (as in Ceph's messenger, which keeps
sessions open), so no per-op handshake is charged.

The :class:`Messenger` base class adds request/reply correlation: ops
carry ids, replies resolve the matching pending event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import NetworkError, ProcessKilled
from ..sim import Environment, Event, Store
from ..status import BlkStatus
from ..units import transfer_ns, us
from .ops import OsdOp, OsdReply
from ..net.message import Message
from ..net.stack import KERNEL_TCP, StackProfile
from ..net.topology import Network

#: Loopback latency for same-host delivery.
LOOPBACK_NS = us(2)
#: Memory bandwidth used for loopback copies.
LOOPBACK_BW = 10e9  # bytes/sec


@dataclass
class Envelope:
    """What a receiver pulls from its fabric inbox."""

    src: str
    payload: Any
    size: int
    #: Payload arrived damaged (chaos injection); receivers treat it as
    #: a checksum mismatch instead of parsing garbage.
    corrupted: bool = False


@dataclass
class MessageFaults:
    """Deterministic message-level chaos on cross-host traffic.

    One RNG draw classifies each cross-host message as dropped,
    duplicated, corrupted, or clean; draws come from a named sim RNG
    substream so the same seed yields the same fault pattern.  Loopback
    traffic is exempt (there is no wire to lose it on).
    """

    rng: Any
    drop_p: float = 0.0
    duplicate_p: float = 0.0
    corrupt_p: float = 0.0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0

    def classify(self) -> Optional[str]:
        """Fate of one message: 'drop' | 'duplicate' | 'corrupt' | None."""
        total = self.drop_p + self.duplicate_p + self.corrupt_p
        if total <= 0:
            return None
        r = self.rng.uniform(0.0, 1.0)
        if r < self.drop_p:
            self.dropped += 1
            return "drop"
        if r < self.drop_p + self.duplicate_p:
            self.duplicated += 1
            return "duplicate"
        if r < total:
            self.corrupted += 1
            return "corrupt"
        return None


class Fabric:
    """Routes entity-to-entity messages across the network."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self._entity_host: dict[str, str] = {}
        self._entity_stack: dict[str, StackProfile] = {}
        self._inbox: dict[str, Store] = {}
        #: Crashed entities and the status their bounces carry: a process
        #: crash answers with TRANSPORT (the peer kernel's RST); a power
        #: loss answers with the retryable AGAIN status.
        self._dead: dict[str, BlkStatus] = {}
        #: Optional chaos injection applied to cross-host messages.
        self.faults: Optional[MessageFaults] = None
        #: Messages lost because a link on the path was down.
        self.link_drops = 0

    def register(self, entity: str, host: str, stack: StackProfile = KERNEL_TCP) -> None:
        """Bind an entity name to a network host and a TCP stack profile."""
        if entity in self._entity_host:
            raise NetworkError(f"entity {entity!r} already registered")
        self.network.host(host)  # validate
        self._entity_host[entity] = host
        self._entity_stack[entity] = stack
        self._inbox[entity] = Store(self.env, name=f"fabric:{entity}")

    def set_stack(self, entity: str, stack: StackProfile) -> None:
        """Swap an entity's stack profile (framework configuration)."""
        if entity not in self._entity_stack:
            raise NetworkError(f"unknown entity {entity!r}")
        self._entity_stack[entity] = stack

    def host_of(self, entity: str) -> str:
        """Network host an entity lives on."""
        if entity not in self._entity_host:
            raise NetworkError(f"unknown entity {entity!r}")
        return self._entity_host[entity]

    def mark_dead(self, entity: str, status: BlkStatus = BlkStatus.TRANSPORT) -> None:
        """Record an entity crash: future deliveries to it bounce."""
        self.host_of(entity)  # validate
        self._dead[entity] = status

    def mark_alive(self, entity: str) -> None:
        """Clear the crash mark (entity restart)."""
        self._dead.pop(entity, None)

    def is_dead(self, entity: str) -> bool:
        """True if the entity has crashed and not restarted."""
        return entity in self._dead

    def drain_inbox(self, entity: str) -> list:
        """Remove and return every queued envelope (crash handling)."""
        store = self._inbox[entity]
        items = list(store.items)
        store.items.clear()
        return items

    def send(self, src: str, dst: str, nbytes: int, payload: Any) -> Generator:
        """Process: deliver ``payload`` from ``src`` to ``dst``.

        Completes when the receiver's stack has processed the message and
        it sits in the destination inbox.  Chaos faults (installed via
        :attr:`faults`) and down links may instead lose, duplicate, or
        damage the message after the sender's stack cost is paid; a dead
        destination bounces requests with a transport-error reply.
        """
        src_host = self.host_of(src)
        dst_host = self.host_of(dst)
        if src_host == dst_host:
            yield self.env.timeout(LOOPBACK_NS + transfer_ns(nbytes, LOOPBACK_BW))
            yield from self._deliver(src, dst, nbytes, payload, corrupted=False)
            return
        action = self.faults.classify() if self.faults is not None else None
        yield self.env.timeout(self._entity_stack[src].tx_ns(nbytes))
        if not self.network.path_up(src_host, dst_host):
            self.link_drops += 1
            return  # lost on a down link; sender's stack cost already paid
        if action == "drop":
            return
        if action == "duplicate":
            # A second copy chases the first down the same path.
            self.env.process(
                self._wire(src, dst, nbytes, payload, corrupted=False),
                name=f"{src}->{dst}:dup",
            )
        yield from self._wire(src, dst, nbytes, payload, corrupted=action == "corrupt")

    def _wire(self, src: str, dst: str, nbytes: int, payload: Any, corrupted: bool) -> Generator:
        """Wire transfer + receiver stack + inbox delivery (cross-host)."""
        src_host = self.host_of(src)
        dst_host = self.host_of(dst)
        msg = Message(src_host, dst_host, nbytes, payload=(src, dst))
        yield self.env.process(self.network.send(msg))
        yield self.network.host(dst_host).inbox.get(lambda m: m.msg_id == msg.msg_id)
        yield self.env.timeout(self._entity_stack[dst].rx_ns(nbytes))
        yield from self._deliver(src, dst, nbytes, payload, corrupted)

    def _deliver(self, src: str, dst: str, nbytes: int, payload: Any, corrupted: bool) -> Generator:
        if dst in self._dead:
            self._bounce(dst, src, payload)
            return
        yield self._inbox[dst].put(Envelope(src, payload, nbytes, corrupted))

    def _bounce(self, dead: str, src: str, payload: Any) -> None:
        """Answer a request to a crashed entity with the kernel's RST."""
        if isinstance(payload, OsdOp) and src not in self._dead:
            status = self._dead[dead]
            if status is BlkStatus.AGAIN:
                error = f"power loss: {dead} is unavailable"
            else:
                error = f"connection refused: {dead} is down"
            refusal = OsdReply(payload.op_id, False, error=error, status=status)
            self.send_async(dead, src, refusal.wire_size(), refusal)

    def send_async(self, src: str, dst: str, nbytes: int, payload: Any):
        """Fire-and-forget send (returns the delivery process event)."""
        return self.env.process(self.send(src, dst, nbytes, payload), name=f"{src}->{dst}")

    def recv(self, entity: str):
        """Event yielding the next :class:`Envelope` for ``entity``."""
        if entity not in self._inbox:
            raise NetworkError(f"unknown entity {entity!r}")
        return self._inbox[entity].get()


class Messenger:
    """Request/reply correlation for one entity on the fabric."""

    def __init__(self, env: Environment, fabric: Fabric, entity: str):
        self.env = env
        self.fabric = fabric
        self.entity = entity
        #: Optional dmClock distributed-tag bookkeeping (installed by
        #: ``CephCluster.enable_qos``): stamps rho/delta onto outgoing
        #: tagged ops and consumes the phase feedback on replies.  Pure
        #: attribute work — no events, so QoS-off runs are untouched.
        self.qos_tracker = None
        self._pending: dict[int, Event] = {}
        #: In-flight request-handler processes, insertion-ordered so a
        #: crash kills them deterministically: proc -> (op_id, src).
        self._handlers: dict = {}
        self._loop_proc = None

    def start(self) -> None:
        """Spawn the demux loop (idempotent); clears any crash mark."""
        self.fabric.mark_alive(self.entity)
        if self._loop_proc is None:
            self._loop_proc = self.env.process(self._demux(), name=f"msgr:{self.entity}")

    def stop(self, status: BlkStatus = BlkStatus.TRANSPORT) -> None:
        """Crash the entity mid-op.

        Kills the demux loop and every in-flight request handler, fails
        this entity's own outstanding calls, and bounces queued/in-flight
        requesters — nobody is left waiting on an event that will never
        fire.  ``status`` selects the failure class the peers observe:
        TRANSPORT for a process crash (connection reset), AGAIN for a
        power loss (retryable — the entity returns after WAL replay).
        """
        if self._loop_proc is not None and self._loop_proc.is_alive:
            self._loop_proc.interrupt("stopped")
        self._loop_proc = None
        self.fabric.mark_dead(self.entity, status)
        # Kill in-flight handlers; their requesters see a reset.
        for proc, (op_id, src) in list(self._handlers.items()):
            if proc.is_alive:
                proc.interrupt("crashed")
            self._reset_reply(op_id, src, status)
        self._handlers.clear()
        # Fail our own outstanding calls (no reply is ever coming).
        if status is BlkStatus.AGAIN:
            own_error = f"{self.entity} lost power with op {{op_id}} outstanding"
        else:
            own_error = f"{self.entity} stopped with op {{op_id}} outstanding"
        for op_id, ev in list(self._pending.items()):
            if not ev.triggered:
                ev.succeed(
                    OsdReply(
                        op_id,
                        False,
                        error=own_error.format(op_id=op_id),
                        status=status,
                    )
                )
        self._pending.clear()
        # Bounce requests already accepted into the inbox but unread.
        for envelope in self.fabric.drain_inbox(self.entity):
            if isinstance(envelope.payload, OsdOp):
                self._reset_reply(envelope.payload.op_id, envelope.src, status)

    def _reset_reply(
        self, op_id: int, src: str, status: BlkStatus = BlkStatus.TRANSPORT
    ) -> None:
        """Send the reset a peer's kernel would emit for a dead process."""
        if self.fabric.is_dead(src):
            return
        if status is BlkStatus.AGAIN:
            error = f"power loss: {self.entity} went dark"
        else:
            error = f"connection reset: {self.entity} crashed"
        reply = OsdReply(op_id, False, error=error, status=status)
        self.fabric.send_async(self.entity, src, reply.wire_size(), reply)

    def _demux(self) -> Generator:
        while True:
            envelope = yield self.fabric.recv(self.entity)
            payload = envelope.payload
            if isinstance(payload, OsdReply):
                if envelope.corrupted:
                    # Damaged reply: surface a checksum failure, never
                    # the (garbage) payload.
                    payload = OsdReply(
                        payload.op_id,
                        False,
                        error="reply payload failed checksum",
                        status=BlkStatus.MEDIUM,
                        epoch=payload.epoch,
                    )
                pending = self._pending.pop(payload.op_id, None)
                if pending is not None:
                    pending.succeed(payload)
            elif envelope.corrupted and isinstance(payload, OsdOp):
                # Damaged request: refuse instead of executing garbage.
                self.env.process(
                    self.reply_to(
                        envelope.src,
                        OsdReply(
                            payload.op_id,
                            False,
                            error="request payload failed checksum",
                            status=BlkStatus.MEDIUM,
                        ),
                    ),
                    name=f"{self.entity}:crc{payload.op_id}",
                )
            else:
                proc = self.env.process(
                    self.on_request(payload, envelope.src),
                    name=f"{self.entity}:op{getattr(payload, 'op_id', '?')}",
                )
                if isinstance(payload, OsdOp):
                    self._handlers[proc] = (payload.op_id, envelope.src)
                    proc.callbacks.append(self._reap_handler)

    def _reap_handler(self, proc) -> None:
        self._handlers.pop(proc, None)
        # Preserve pre-tracking semantics: a handler that dies with a
        # real error (not a crash interrupt) still crashes the sim.
        if not proc.ok and not isinstance(proc.value, ProcessKilled):
            raise proc.value

    def call(self, dst: str, op: OsdOp, timeout_ns: Optional[int] = None) -> Generator:
        """Process: send ``op`` and wait for its reply (returned).

        With ``timeout_ns``, a reply that does not arrive in time yields
        a synthetic failed :class:`OsdReply` with a TIMEOUT status — the
        caller decides whether to retry against a newer map.  The pending
        entry is dropped on timeout, so a late reply is discarded rather
        than misdelivered to a future waiter.
        """
        ev = self.env.event()
        self._pending[op.op_id] = ev
        if self.qos_tracker is not None and op.qos is not None:
            self.qos_tracker.stamp(op, dst)
        yield from self.fabric.send(self.entity, dst, op.wire_size(), op)
        if timeout_ns is None:
            reply = yield ev
            self._account_qos(op, reply)
            return reply
        deadline = self.env.timeout(timeout_ns)
        results = yield self.env.any_of([ev, deadline])
        if ev in results:
            reply = results[ev]
            self._account_qos(op, reply)
            return reply
        self._pending.pop(op.op_id, None)
        return OsdReply(
            op.op_id,
            False,
            error=f"timeout after {timeout_ns} ns",
            status=BlkStatus.TIMEOUT,
        )

    def _account_qos(self, op: OsdOp, reply: OsdReply) -> None:
        """Feed dmClock phase feedback to the tracker (synthetic replies
        carry phase 0 and are ignored)."""
        if self.qos_tracker is not None and op.qos is not None and reply.qos_phase:
            self.qos_tracker.account(op.qos, reply.qos_phase)

    def reply_to(self, dst: str, reply: OsdReply) -> Generator:
        """Process: send a reply back to the requester."""
        yield from self.fabric.send(self.entity, dst, reply.wire_size(), reply)

    def on_request(self, op: OsdOp, src: str) -> Generator:
        """Handle an incoming request (override in daemons)."""
        raise NotImplementedError(f"{self.entity} received unexpected request {op!r}")
        yield  # pragma: no cover


def traced_call(
    messenger: Messenger, dst: str, op: OsdOp, timeout_ns: Optional[int] = None, span=None
) -> Generator:
    """Process: :meth:`Messenger.call` with an optional causal leg span.

    Stamps ``op.obs_span`` so the serving OSD can attach its
    queue/service sub-spans to the same leg, and closes ``span`` when
    the reply (including the synthetic timeout reply) lands.  With
    ``span=None`` this is byte-for-byte ``messenger.call``: same events,
    same return value.
    """
    if span is not None:
        op.obs_span = span
    reply = yield from messenger.call(dst, op, timeout_ns=timeout_ns)
    if span is not None:
        if not reply.ok:
            span.annotate(status=reply.status.name)
        span.finish(ok=reply.ok)
    return reply
