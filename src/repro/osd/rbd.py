"""RBD: a virtual block device striped over RADOS objects.

Mirrors Ceph's RADOS Block Device: the image is chunked into fixed-size
objects named ``rbd_data.<image>.<index>``; block I/O splits into
per-object extents issued in parallel.  This is the layer the DeLiBA-K
UIFD driver exposes to the Linux block stack.

Erasure-coded images operate at object granularity (full-object encode
per write), so ``object_size`` should equal the workload block size for
EC pools; partial-object EC writes raise.  Replicated images support
arbitrary sub-object extents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import StorageError
from ..obs.context import wrap_span
from ..units import mib
from .client import RadosClient
from .osdmap import Pool, PoolType

DEFAULT_OBJECT_SIZE = mib(4)


@dataclass(frozen=True)
class Extent:
    """A contiguous byte range of the image."""

    offset: int
    length: int


class RBDImage:
    """One virtual disk image."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        pool: Pool,
        client: RadosClient,
        object_size: int = DEFAULT_OBJECT_SIZE,
        direct: bool = False,
    ):
        if size_bytes < 1:
            raise StorageError(f"image size must be >= 1, got {size_bytes}")
        if object_size < 512:
            raise StorageError(f"object size must be >= 512, got {object_size}")
        self.name = name
        self.size_bytes = size_bytes
        self.pool = pool
        self.client = client
        self.object_size = object_size
        #: DeLiBA mode: client fans out replicas/shards directly.
        self.direct = direct

    def object_name(self, index: int) -> str:
        """RADOS object name of chunk ``index``."""
        return f"rbd_data.{self.name}.{index:016x}"

    def _object_extents(self, offset: int, length: int) -> list[tuple[int, int, int]]:
        """Split [offset, offset+length) into (object_index, obj_off, len)."""
        if offset < 0 or length <= 0:
            raise StorageError(f"invalid extent ({offset}, {length})")
        if offset + length > self.size_bytes:
            raise StorageError(
                f"extent ({offset}, {length}) beyond image size {self.size_bytes}"
            )
        out = []
        pos = offset
        remaining = length
        while remaining > 0:
            idx = pos // self.object_size
            obj_off = pos % self.object_size
            chunk = min(remaining, self.object_size - obj_off)
            out.append((idx, obj_off, chunk))
            pos += chunk
            remaining -= chunk
        return out

    def write(
        self, offset: int, data: bytes, sequential: bool = False, ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: write ``data`` at ``offset`` (parallel across objects).

        ``ctx`` is an optional causal span: multi-object writes open one
        ``fanout`` child per extent so the straggler object is visible.
        ``tenant`` is the QoS identity stamped on every RADOS op.
        """
        extents = self._object_extents(offset, len(data))
        multi = len(extents) > 1
        is_ec = self.pool.pool_type == PoolType.ERASURE
        pre_encoded: list[Optional[list[bytes]]] = [None] * len(extents)
        if is_ec and self.direct and len(extents) > 1:
            # Client-side fan-out re-encodes every object of the write:
            # batch all stripes through one cross-stripe matmul instead
            # of one codec call per object (bytes are identical).
            payloads, pos = [], 0
            for _idx, obj_off, chunk in extents:
                if obj_off != 0:
                    raise StorageError(
                        f"EC image {self.name!r}: partial-object write at offset {offset}"
                    )
                payloads.append(data[pos : pos + chunk])
                pos += chunk
            pre_encoded = self.client._codec(self.pool).encode_batch(payloads)
        procs = []
        pos = 0
        for ext_i, (idx, obj_off, chunk) in enumerate(extents):
            payload = data[pos : pos + chunk]
            pos += chunk
            name = self.object_name(idx)
            leg = ctx.child(f"obj{idx}", "fanout", object=idx) if ctx is not None and multi else None
            sub_ctx = leg if leg is not None else ctx
            if is_ec:
                if obj_off != 0:
                    # EC model: writes must start at an object boundary
                    # (each write re-encodes the object it addresses).
                    raise StorageError(
                        f"EC image {self.name!r}: partial-object write at offset {offset}"
                    )
                gen = self.client.write_ec(
                    self.pool,
                    name,
                    payload,
                    direct=self.direct,
                    sequential=sequential,
                    shards=pre_encoded[ext_i],
                    ctx=sub_ctx,
                    tenant=tenant,
                )
                procs.append(self.client.env.process(wrap_span(leg, gen), name="rbd-ec-wr"))
            else:
                gen = self.client.write_replicated(
                    self.pool,
                    name,
                    payload,
                    offset=obj_off,
                    direct=self.direct,
                    sequential=sequential,
                    ctx=sub_ctx,
                    tenant=tenant,
                )
                procs.append(self.client.env.process(wrap_span(leg, gen), name="rbd-wr"))
        yield self.client.env.all_of(procs)

    def read(self, offset: int, length: int, ctx=None, tenant: str = "") -> Generator:
        """Process: read ``length`` bytes at ``offset``; returns bytes."""
        extents = self._object_extents(offset, length)
        multi = len(extents) > 1
        env = self.client.env
        procs = []
        for idx, obj_off, chunk in extents:
            name = self.object_name(idx)
            leg = ctx.child(f"obj{idx}", "fanout", object=idx) if ctx is not None and multi else None
            sub_ctx = leg if leg is not None else ctx
            if self.pool.pool_type == PoolType.ERASURE:
                if obj_off != 0:
                    raise StorageError(
                        f"EC image {self.name!r}: partial-object read at offset {offset}"
                    )
                gen = self.client.read_ec(
                    self.pool, name, chunk, direct=self.direct, ctx=sub_ctx, tenant=tenant
                )
                procs.append(env.process(wrap_span(leg, gen), name="rbd-ec-rd"))
            else:
                gen = self.client.read_replicated(
                    self.pool, name, obj_off, chunk, ctx=sub_ctx, tenant=tenant
                )
                procs.append(env.process(wrap_span(leg, gen), name="rbd-rd"))
        results = yield env.all_of(procs)
        return b"".join(results[p] for p in procs)
