"""Zoned block devices: ZNS SSDs and host-managed SMR HDDs.

The UIFD driver advertises support for "emerging local storage such as
ZNS and SMR disks" (paper Section III-B; the authors had physical SMR
drives and ran tests on them, with ZNS left out of scope — footnote 3).
This module models the device-side semantics those drives impose:

* the LBA space splits into fixed-size **zones**;
* writes within a zone must land exactly at the zone's **write
  pointer** (sequential-only); ``zone_append`` lets the device pick the
  offset;
* zones are reset as a unit, and only a bounded number may be open.

:class:`ZonedDevice` wraps the media model with this state machine, so
an OSD (or the UIFD driver) can be exercised against zone-append
semantics and the SMR random-write penalty falls out of conformance
instead of a magic constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Generator

from ..errors import StorageError
from ..sim import Environment, RngStream
from ..units import mib, us
from .storage import SMR_HDD, MediaProfile, StorageDevice


class ZoneState(Enum):
    """Lifecycle of one zone."""

    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"
    OFFLINE = "offline"


@dataclass
class Zone:
    """One sequential-write-required zone."""

    index: int
    start: int  # byte offset of the zone
    length: int
    write_pointer: int = 0  # bytes written so far
    state: ZoneState = ZoneState.EMPTY

    @property
    def remaining(self) -> int:
        """Writable bytes before the zone is full."""
        return self.length - self.write_pointer


class ZonedDevice:
    """A zoned drive: media model + zone state machine."""

    def __init__(
        self,
        env: Environment,
        capacity: int,
        zone_size: int = mib(256),
        max_open_zones: int = 14,
        profile: MediaProfile = SMR_HDD,
        rng: RngStream | None = None,
        name: str = "zoned0",
        reset_ns: int = us(500),
    ):
        if capacity < zone_size or capacity % zone_size:
            raise StorageError(
                f"capacity {capacity} must be a positive multiple of zone size {zone_size}"
            )
        if max_open_zones < 1:
            raise StorageError(f"max_open_zones must be >= 1, got {max_open_zones}")
        self.env = env
        self.zone_size = zone_size
        self.max_open_zones = max_open_zones
        self.reset_ns = reset_ns
        self.media = StorageDevice(env, profile, rng=rng, name=name)
        self.zones = [
            Zone(i, i * zone_size, zone_size) for i in range(capacity // zone_size)
        ]
        self.appends = 0
        self.resets = 0

    # -- helpers -----------------------------------------------------------------

    def zone_of(self, offset: int) -> Zone:
        """Zone containing byte ``offset``."""
        if not 0 <= offset < len(self.zones) * self.zone_size:
            raise StorageError(f"offset {offset} outside the device")
        return self.zones[offset // self.zone_size]

    @property
    def open_zones(self) -> list[Zone]:
        """Zones currently open for writing."""
        return [z for z in self.zones if z.state == ZoneState.OPEN]

    def _ensure_open(self, zone: Zone) -> None:
        if zone.state == ZoneState.OFFLINE:
            raise StorageError(f"zone {zone.index} is offline")
        if zone.state == ZoneState.FULL:
            raise StorageError(f"zone {zone.index} is full; reset before rewriting")
        if zone.state == ZoneState.EMPTY:
            if len(self.open_zones) >= self.max_open_zones:
                raise StorageError(
                    f"cannot open zone {zone.index}: {self.max_open_zones} zones already open"
                )
            zone.state = ZoneState.OPEN

    # -- I/O ---------------------------------------------------------------------

    def write(self, offset: int, length: int) -> Generator:
        """Process: sequential write at exactly the zone's write pointer.

        Raises :class:`StorageError` on any non-sequential write — the
        conformance rule that makes SMR/ZNS random writes impossible
        without a translation layer.
        """
        if length <= 0:
            raise StorageError(f"write length must be > 0, got {length}")
        zone = self.zone_of(offset)
        self._ensure_open(zone)
        expected = zone.start + zone.write_pointer
        if offset != expected:
            raise StorageError(
                f"unaligned zone write: offset {offset}, write pointer at {expected}"
            )
        if length > zone.remaining:
            raise StorageError(
                f"write of {length} B exceeds zone {zone.index} remaining {zone.remaining} B"
            )
        yield from self.media.write(f"zone{zone.index}", zone.write_pointer, length, True)
        zone.write_pointer += length
        if zone.write_pointer == zone.length:
            zone.state = ZoneState.FULL

    def zone_append(self, zone_index: int, length: int) -> Generator:
        """Process: device-chosen-offset append; returns the byte offset.

        The primitive ZNS adds so multiple writers need not serialize on
        the write pointer.
        """
        if not 0 <= zone_index < len(self.zones):
            raise StorageError(f"no zone {zone_index}")
        zone = self.zones[zone_index]
        self._ensure_open(zone)
        if length <= 0 or length > zone.remaining:
            raise StorageError(
                f"append of {length} B invalid for zone {zone_index} "
                f"(remaining {zone.remaining} B)"
            )
        offset = zone.start + zone.write_pointer
        zone.write_pointer += length
        if zone.write_pointer == zone.length:
            zone.state = ZoneState.FULL
        yield from self.media.write(f"zone{zone.index}", offset - zone.start, length, True)
        self.appends += 1
        return offset

    def read(self, offset: int, length: int) -> Generator:
        """Process: read below the write pointer."""
        zone = self.zone_of(offset)
        end = offset + length
        if end > zone.start + zone.write_pointer:
            raise StorageError(
                f"read beyond write pointer in zone {zone.index} "
                f"({end} > {zone.start + zone.write_pointer})"
            )
        yield from self.media.read(f"zone{zone.index}", offset - zone.start, length)

    def reset_zone(self, zone_index: int) -> Generator:
        """Process: rewind a zone to empty (the only way to reuse it)."""
        if not 0 <= zone_index < len(self.zones):
            raise StorageError(f"no zone {zone_index}")
        zone = self.zones[zone_index]
        if zone.state == ZoneState.OFFLINE:
            raise StorageError(f"zone {zone_index} is offline")
        yield self.env.timeout(self.reset_ns)
        zone.write_pointer = 0
        zone.state = ZoneState.EMPTY
        self.resets += 1

    def finish_zone(self, zone_index: int) -> None:
        """Force a zone to FULL (stop accepting writes without filling it)."""
        zone = self.zones[zone_index]
        if zone.state not in (ZoneState.OPEN, ZoneState.EMPTY):
            raise StorageError(f"cannot finish zone {zone_index} in state {zone.state}")
        zone.state = ZoneState.FULL
