"""RADOS client: object reads/writes against replicated and EC pools.

Implements both op topologies (see ``osd.py``): primary-mediated
(software Ceph) and direct client fan-out (the DeLiBA datapath, where
the client-side FPGA addresses every replica/shard itself).

Every op runs under an :class:`repro.osd.policy.OpPolicy`: on a failed
or timed-out reply the client re-runs CRUSH placement against the
current OSDMap epoch and retries — reads fail over primary ->
secondaries, EC reads degrade to decode-from-survivors, and writes
replay idempotently by op id (the OSD reply cache absorbs duplicates).

The client charges **no** host API or placement-compute costs — those
belong to the framework layer (``repro.deliba``), which wraps this
client with the per-generation cost model.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..crush import CRUSH_ITEM_NONE, PlacementEngine
from ..ec import ReedSolomon
from ..errors import OsdOpError, StorageError
from ..sim import NULL_METRICS, Environment
from ..status import BlkStatus
from .fabric import Fabric, Messenger, traced_call
from .ops import OpKind, OsdOp, OsdReply
from .osdmap import OSDMap, Pool, PoolType
from .policy import DEFAULT_POLICY, OpPolicy
from .qos import QosTag


class RadosClient(Messenger):
    """One client entity issuing object I/O."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        osdmap: OSDMap,
        name: str = "client0",
        policy: Optional[OpPolicy] = None,
        rng=None,
        metrics=None,
    ):
        super().__init__(env, fabric, name)
        self.osdmap = osdmap
        self.placement = PlacementEngine(osdmap.crush)
        self._placement_epoch = osdmap.epoch
        #: Epoch-keyed placement cache: (pool_id, object) -> (acting, ops).
        #: Valid for ``_placement_epoch`` only; cleared on any map bump
        #: (including the OpPolicy failover refresh), so a stale epoch is
        #: never served.
        self._placement_cache: dict[tuple[int, str], tuple[tuple[int, ...], int]] = {}
        self._codecs: dict[int, ReedSolomon] = {}
        self.policy = policy or DEFAULT_POLICY
        #: RNG substream for backoff jitter (None = no jitter).
        self._rng = rng
        #: Default tenant identity stamped on this client's ops when the
        #: per-call ``tenant`` argument is empty (one client per VM).
        self.tenant = ""
        self.ops_completed = 0
        #: CRUSH work counter of the last placement (profiling hook).
        self.last_placement_ops = 0
        #: True when the last compute_placement actually ran CRUSH (the
        #: cost-model hook: hits pay only a hash + lookup).
        self.last_was_miss = False
        # Fault-path accounting (mirrored into the metrics registry).
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0
        self.degraded_reads = 0
        #: Ops that raced an OSD power loss (retryable AGAIN status).
        self.power_loss_retries = 0
        #: Ops issued against an acting set with CRUSH holes (the pool
        #: is running below its redundancy target — degraded IO).
        self.degraded_placements = 0
        metrics = metrics or NULL_METRICS
        self._m_degraded_placements = metrics.counter("client.degraded_placements")
        self._m_retries = metrics.counter("client.retries")
        self._m_timeouts = metrics.counter("client.timeouts")
        self._m_failovers = metrics.counter("client.failovers")
        self._m_degraded = metrics.counter("client.degraded_reads")
        self._m_power_loss = metrics.counter("client.power_loss_retries")
        self._m_place_hits = metrics.counter("client.placement_cache.hits")
        self._m_place_misses = metrics.counter("client.placement_cache.misses")

    def _codec(self, pool: Pool) -> ReedSolomon:
        if pool.pool_id not in self._codecs:
            self._codecs[pool.pool_id] = ReedSolomon(pool.k, pool.m)
        return self._codecs[pool.pool_id]

    def compute_placement(self, pool: Pool, object_name: str) -> tuple[int, ...]:
        """Object -> acting set via CRUSH, memoized per map epoch.

        The per-client cache short-circuits the whole object->pg->OSD
        path (name hash + stable-mod + rule execution) for repeat
        touches of an object within one OSDMap epoch.  Any epoch bump —
        device out/in, reweight, or the OpPolicy failover refresh —
        clears it, so a cached acting set is never served across map
        changes.  The acting set is returned as a tuple: the cached
        entry used to be the mutable list shared with every caller, so
        one caller editing "its" result silently corrupted every later
        lookup of that object for the rest of the epoch.
        """
        epoch = self.osdmap.epoch
        if self._placement_epoch != epoch:
            self.placement.invalidate()
            self._placement_cache.clear()
            self._placement_epoch = epoch
        key = (pool.pool_id, object_name)
        entry = self._placement_cache.get(key)
        if entry is not None:
            acting, ops = entry
            self.last_placement_ops = ops
            self.last_was_miss = False
            self._m_place_hits.add()
            if CRUSH_ITEM_NONE in acting:
                self.degraded_placements += 1
                self._m_degraded_placements.add()
            return acting
        _pg, acting_list = self.placement.object_to_osds(
            pool.pool_id, object_name, pool.pg_num, pool.rule, pool.size
        )
        acting = tuple(acting_list)
        ops = self.placement.mapper.last_ops
        self.last_placement_ops = ops
        # A client-cache miss may still be a PG-cache hit in the engine;
        # the cost model charges the full CRUSH cost only on real misses.
        self.last_was_miss = self.placement.last_was_miss
        self._placement_cache[key] = (acting, ops)
        self._m_place_misses.add()
        if CRUSH_ITEM_NONE in acting:
            self.degraded_placements += 1
            self._m_degraded_placements.add()
        return acting

    def _qos_tag(self, tenant: str) -> Optional[QosTag]:
        """QoS identity for one logical op (None when there is nothing
        to say: no tenant named and no QoS tracker installed).  Each
        wire op derives its own copy, so retry and failover legs inherit
        the originating op's identity instead of re-entering OSD queues
        anonymously."""
        tenant = tenant or self.tenant
        if not tenant and self.qos_tracker is None:
            return None
        return QosTag(tenant)

    # -- retry bookkeeping ---------------------------------------------------------

    def _note_retry(self) -> None:
        self.retries += 1
        self._m_retries.add()

    def _note_failover(self) -> None:
        self.failovers += 1
        self._m_failovers.add()

    def _note_degraded(self) -> None:
        self.degraded_reads += 1
        self._m_degraded.add()

    def _note_failure(self, reply: OsdReply) -> None:
        if reply.status is BlkStatus.TIMEOUT:
            self.timeouts += 1
            self._m_timeouts.add()
        elif reply.status is BlkStatus.AGAIN:
            # Power loss at the target: distinctly labeled — the OSD is
            # expected back after WAL replay, unlike a TRANSPORT crash.
            self.power_loss_retries += 1
            self._m_power_loss.add()

    def _backoff(self, attempt: int) -> Generator:
        """Process: retry delay before attempt ``attempt + 1``."""
        delay = self.policy.backoff_ns(attempt, self._rng)
        if delay > 0:
            yield self.env.timeout(delay)

    @staticmethod
    def _exhausted(kind: str, object_name: str, attempts: int, last) -> OsdOpError:
        if isinstance(last, OsdReply):
            status, detail = last.status, last.error
        elif isinstance(last, StorageError):
            status, detail = getattr(last, "status", BlkStatus.IOERR), str(last)
        else:
            status, detail = BlkStatus.IOERR, "no reply"
        return OsdOpError(
            f"{kind} {object_name!r} failed after {attempts} attempts: {detail}",
            status=status,
            attempts=attempts,
        )

    # -- replicated pools ---------------------------------------------------------

    def write_replicated(
        self,
        pool: Pool,
        object_name: str,
        data: bytes,
        offset: int = 0,
        direct: bool = False,
        sequential: bool = False,
        ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: durable write of ``data`` to all replicas.

        ``direct=True`` fans out from the client (DeLiBA); otherwise the
        op routes through the primary, which forwards sub-ops.  Failed
        targets are retried under the policy against freshly computed
        placement; already-acked replicas are not re-sent, and re-sent
        ops keep their id so OSDs replay them idempotently.

        ``ctx`` is an optional causal span; each (attempt, target) pair
        becomes one ``rpc`` child, backoffs become ``wait`` children.
        """
        if pool.pool_type != PoolType.REPLICATED:
            raise StorageError(f"pool {pool.name!r} is not replicated")
        policy = self.policy
        qos = self._qos_tag(tenant)
        ops: dict[int, OsdOp] = {}  # target -> op, reused across attempts
        done: set[int] = set()
        primary_op: Optional[OsdOp] = None
        group_version = 0
        last = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._note_retry()
                t0 = self.env.now
                yield from self._backoff(attempt - 1)
                if ctx is not None and self.env.now > t0:
                    ctx.record("backoff", "wait", t0, self.env.now, attempt=attempt)
            acting = [o for o in self.compute_placement(pool, object_name) if o != CRUSH_ITEM_NONE]
            if not acting:
                raise StorageError(f"no acting set for {object_name!r} (cluster too degraded)")
            if direct:
                targets = [t for t in acting if t not in done]
                if not targets:  # epoch change shrank acting to acked replicas
                    self.ops_completed += 1
                    return
                procs = {}
                for target in targets:
                    op = ops.get(target)
                    if op is None:
                        op = OsdOp(
                            OpKind.WRITE_DIRECT,
                            pool.pool_id,
                            object_name,
                            offset,
                            len(data),
                            data=data,
                            sequential=sequential,
                            epoch=self.osdmap.epoch,
                            qos=qos.derive() if qos is not None else None,
                        )
                        # All replicas of one logical write share one
                        # mutation version (the first sub-op's id), so
                        # recovery peering sees the copies as equals.
                        if group_version == 0:
                            group_version = op.op_id
                        op.version = group_version
                        ops[target] = op
                    else:
                        op.epoch = self.osdmap.epoch
                    leg = (
                        ctx.child(f"osd.{target}", "rpc", attempt=attempt)
                        if ctx is not None
                        else None
                    )
                    procs[target] = self.env.process(
                        traced_call(self, f"osd.{target}", op, policy.timeout_ns, leg), name="wr"
                    )
                results = yield self.env.all_of(list(procs.values()))
                for target, proc in procs.items():
                    reply = results[proc]
                    if reply.ok:
                        done.add(target)
                    else:
                        self._note_failure(reply)
                        last = reply
                if all(t in done for t in acting):
                    self.ops_completed += 1
                    return
            else:
                primary = acting[0]
                if primary_op is None:
                    primary_op = OsdOp(
                        OpKind.WRITE,
                        pool.pool_id,
                        object_name,
                        offset,
                        len(data),
                        data=data,
                        acting=tuple(acting),
                        sequential=sequential,
                        epoch=self.osdmap.epoch,
                        qos=qos.derive() if qos is not None else None,
                    )
                else:
                    primary_op.acting = tuple(acting)
                    primary_op.epoch = self.osdmap.epoch
                leg = (
                    ctx.child(f"osd.{primary}", "rpc", attempt=attempt)
                    if ctx is not None
                    else None
                )
                reply = yield from traced_call(
                    self, f"osd.{primary}", primary_op, policy.timeout_ns, leg
                )
                if reply.ok:
                    self.ops_completed += 1
                    return
                self._note_failure(reply)
                last = reply
        raise self._exhausted("write", object_name, policy.max_attempts, last)

    def read_replicated(
        self, pool: Pool, object_name: str, offset: int, length: int, ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: read, failing over primary -> secondaries; returns bytes.

        Each attempt walks the acting set in order; any replica
        answering "no such object" is authoritative (unwritten extents
        of a block image read as zeros, librbd semantics).  Every
        (attempt, target) pair uses a fresh op id, so a reply that
        limps in after its timeout is dropped, never misdelivered.
        """
        if pool.pool_type != PoolType.REPLICATED:
            raise StorageError(f"pool {pool.name!r} is not replicated")
        policy = self.policy
        qos = self._qos_tag(tenant)
        last = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._note_retry()
                t0 = self.env.now
                yield from self._backoff(attempt - 1)
                if ctx is not None and self.env.now > t0:
                    ctx.record("backoff", "wait", t0, self.env.now, attempt=attempt)
            acting = [o for o in self.compute_placement(pool, object_name) if o != CRUSH_ITEM_NONE]
            if not acting:
                raise StorageError(f"no acting set for {object_name!r}")
            for idx, target in enumerate(acting):
                # Fresh op per (attempt, target) — the failover leg still
                # derives the originating op's QoS identity, so it never
                # re-enters the secondary's queue anonymously.
                op = OsdOp(
                    OpKind.READ, pool.pool_id, object_name, offset, length,
                    epoch=self.osdmap.epoch,
                    qos=qos.derive() if qos is not None else None,
                )
                leg = (
                    ctx.child(f"osd.{target}", "rpc", attempt=attempt, failover=idx)
                    if ctx is not None
                    else None
                )
                reply = yield from traced_call(self, f"osd.{target}", op, policy.timeout_ns, leg)
                if reply.ok:
                    if idx > 0:
                        self._note_failover()
                    self.ops_completed += 1
                    return reply.data
                if reply.error.startswith("no such object"):
                    self.ops_completed += 1
                    return b"\x00" * length
                self._note_failure(reply)
                last = reply
        raise self._exhausted("read", object_name, policy.max_attempts, last)

    # -- erasure-coded pools ----------------------------------------------------------

    def write_ec(
        self,
        pool: Pool,
        object_name: str,
        data: bytes,
        direct: bool = False,
        sequential: bool = False,
        shards: Optional[list[bytes]] = None,
        ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: EC write of a whole object.

        ``direct=True``: the client encodes and addresses each shard OSD
        itself (codec CPU/FPGA cost is charged by the framework layer).
        Otherwise the primary encodes and fans out.  Shards already
        acked by their current target are not re-sent on retry.

        ``shards`` may carry the object pre-encoded (the RBD layer
        batch-encodes all objects of a multi-object write in one
        cross-stripe matmul); when absent the codec runs here.  Either
        way the bytes are identical.
        """
        if pool.pool_type != PoolType.ERASURE:
            raise StorageError(f"pool {pool.name!r} is not erasure-coded")
        policy = self.policy
        qos = self._qos_tag(tenant)
        shard_ops: dict[tuple[int, int], OsdOp] = {}  # (rank, target) -> op
        written: dict[int, int] = {}  # rank -> target that acked
        primary_op: Optional[OsdOp] = None
        group_version = 0
        last = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._note_retry()
                t0 = self.env.now
                yield from self._backoff(attempt - 1)
                if ctx is not None and self.env.now > t0:
                    ctx.record("backoff", "wait", t0, self.env.now, attempt=attempt)
            acting = self.compute_placement(pool, object_name)
            targets = [(rank, osd) for rank, osd in enumerate(acting) if osd != CRUSH_ITEM_NONE]
            if len(targets) < pool.k:
                raise StorageError(
                    f"only {len(targets)} shard targets for {object_name!r}, need k={pool.k}"
                )
            if direct:
                if shards is None:
                    shards = self._codec(pool).encode(data)
                pending = [(rank, t) for rank, t in targets if written.get(rank) != t]
                if not pending:
                    self.ops_completed += 1
                    return
                procs = {}
                for rank, target in pending:
                    key = (rank, target)
                    op = shard_ops.get(key)
                    if op is None:
                        op = OsdOp(
                            OpKind.SHARD_WRITE,
                            pool.pool_id,
                            object_name,
                            0,
                            len(shards[rank]),
                            data=shards[rank],
                            shard=rank,
                            sequential=sequential,
                            epoch=self.osdmap.epoch,
                            qos=qos.derive() if qos is not None else None,
                        )
                        # One version across all shards of this write.
                        if group_version == 0:
                            group_version = op.op_id
                        op.version = group_version
                        shard_ops[key] = op
                    else:
                        op.epoch = self.osdmap.epoch
                    leg = (
                        ctx.child(f"osd.{target}", "rpc", attempt=attempt, shard=rank)
                        if ctx is not None
                        else None
                    )
                    procs[key] = self.env.process(
                        traced_call(self, f"osd.{target}", op, policy.timeout_ns, leg),
                        name="shard",
                    )
                results = yield self.env.all_of(list(procs.values()))
                complete = True
                for (rank, target), proc in procs.items():
                    reply = results[proc]
                    if reply.ok:
                        written[rank] = target
                    else:
                        complete = False
                        self._note_failure(reply)
                        last = reply
                if complete:
                    self.ops_completed += 1
                    return
            else:
                primary = targets[0][1]
                if primary_op is None:
                    primary_op = OsdOp(
                        OpKind.EC_WRITE,
                        pool.pool_id,
                        object_name,
                        0,
                        len(data),
                        data=data,
                        acting=tuple(osd for _, osd in targets),
                        sequential=sequential,
                        epoch=self.osdmap.epoch,
                        qos=qos.derive() if qos is not None else None,
                    )
                else:
                    primary_op.acting = tuple(osd for _, osd in targets)
                    primary_op.epoch = self.osdmap.epoch
                leg = (
                    ctx.child(f"osd.{primary}", "rpc", attempt=attempt)
                    if ctx is not None
                    else None
                )
                reply = yield from traced_call(
                    self, f"osd.{primary}", primary_op, policy.timeout_ns, leg
                )
                if reply.ok:
                    self.ops_completed += 1
                    return
                self._note_failure(reply)
                last = reply
        raise self._exhausted("ec write", object_name, policy.max_attempts, last)

    def read_ec(
        self, pool: Pool, object_name: str, length: int, direct: bool = False, ctx=None,
        tenant: str = "",
    ) -> Generator:
        """Process: EC read of a whole object of known ``length``.

        When shards are unreachable the gather falls back to parity
        ranks and the read degrades to decode-from-survivors (counted in
        ``degraded_reads``); whole-read failures retry under the policy.
        """
        if pool.pool_type != PoolType.ERASURE:
            raise StorageError(f"pool {pool.name!r} is not erasure-coded")
        policy = self.policy
        qos = self._qos_tag(tenant)
        last = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._note_retry()
                t0 = self.env.now
                yield from self._backoff(attempt - 1)
                if ctx is not None and self.env.now > t0:
                    ctx.record("backoff", "wait", t0, self.env.now, attempt=attempt)
            acting = self.compute_placement(pool, object_name)
            targets = [(rank, osd) for rank, osd in enumerate(acting) if osd != CRUSH_ITEM_NONE]
            if len(targets) < pool.k:
                raise StorageError(f"unrecoverable {object_name!r}: {len(targets)} < k={pool.k}")
            if direct:
                codec = self._codec(pool)
                shard_len = codec.shard_size(length)
                gather = (
                    ctx.child("gather", "fanout", attempt=attempt) if ctx is not None else None
                )
                try:
                    shards, degraded = yield from gather_shards(
                        self, pool, object_name, targets, shard_len, self.osdmap.epoch,
                        timeout_ns=policy.timeout_ns, ctx=gather, qos=qos,
                    )
                except StorageError as exc:
                    if gather is not None:
                        gather.finish(ok=False)
                    last = exc
                    continue
                if gather is not None:
                    gather.finish(degraded=degraded)
                if degraded:
                    self._note_degraded()
                self.ops_completed += 1
                return codec.decode(shards, length)
            primary = targets[0][1]
            op = OsdOp(
                OpKind.EC_READ,
                pool.pool_id,
                object_name,
                0,
                length,
                acting=tuple(osd for _, osd in targets),
                epoch=self.osdmap.epoch,
                qos=qos.derive() if qos is not None else None,
            )
            leg = (
                ctx.child(f"osd.{primary}", "rpc", attempt=attempt) if ctx is not None else None
            )
            reply = yield from traced_call(self, f"osd.{primary}", op, policy.timeout_ns, leg)
            if reply.ok:
                self.ops_completed += 1
                return reply.data
            self._note_failure(reply)
            last = reply
        raise self._exhausted("ec read", object_name, policy.max_attempts, last)


def gather_shards(
    messenger, pool, object_name, targets, shard_len, epoch, preloaded=None, timeout_ns=None,
    ctx=None, qos=None,
):
    """Process: collect >= k shards; returns ``(shards, degraded)``.

    Phase 1 reads the first k ranks in parallel (the healthy fast path);
    if some targets lack their shard or fail to answer (degraded
    placement, crashed OSD, lost message), further ranks are queried
    until k shards are in hand — ``degraded`` is True when any queried
    target failed and the decode runs from survivors.  Shared between
    the client-direct path and the EC primary, which passes its
    locally-read shard via ``preloaded``.
    """
    env = messenger.env
    shards: list[Optional[bytes]] = [None] * pool.size
    got = 0
    degraded = False
    if preloaded:
        for rank, data in preloaded.items():
            shards[rank] = data
            got += 1
    remaining = [(rank, tgt) for rank, tgt in targets if shards[rank] is None]
    idx = 0
    while got < pool.k and idx < len(remaining):
        batch = remaining[idx : idx + (pool.k - got)]
        idx += len(batch)
        procs = {}
        for rank, target in batch:
            op = OsdOp(
                OpKind.SHARD_READ,
                pool.pool_id,
                object_name,
                0,
                shard_len,
                shard=rank,
                epoch=epoch,
                qos=qos.derive() if qos is not None else None,
            )
            leg = ctx.child(f"osd.{target}", "rpc", shard=rank) if ctx is not None else None
            procs[rank] = env.process(
                traced_call(messenger, f"osd.{target}", op, timeout_ns, leg), name="shard"
            )
        results = yield env.all_of(list(procs.values()))
        for rank, proc in procs.items():
            reply = results[proc]
            if reply.ok:
                shards[rank] = reply.data
                got += 1
            else:
                degraded = True
    if got < pool.k:
        raise StorageError(
            f"object {object_name!r}: only {got} shards readable, need k={pool.k}"
        )
    return shards, degraded
