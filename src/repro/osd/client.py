"""RADOS client: object reads/writes against replicated and EC pools.

Implements both op topologies (see ``osd.py``): primary-mediated
(software Ceph) and direct client fan-out (the DeLiBA datapath, where
the client-side FPGA addresses every replica/shard itself).

The client charges **no** host API or placement-compute costs — those
belong to the framework layer (``repro.deliba``), which wraps this
client with the per-generation cost model.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..crush import CRUSH_ITEM_NONE, PlacementEngine
from ..ec import ReedSolomon
from ..errors import StorageError
from ..sim import Environment
from .fabric import Fabric, Messenger
from .ops import OpKind, OsdOp, OsdReply
from .osdmap import OSDMap, Pool, PoolType


class RadosClient(Messenger):
    """One client entity issuing object I/O."""

    def __init__(self, env: Environment, fabric: Fabric, osdmap: OSDMap, name: str = "client0"):
        super().__init__(env, fabric, name)
        self.osdmap = osdmap
        self.placement = PlacementEngine(osdmap.crush)
        self._placement_epoch = osdmap.epoch
        self._codecs: dict[int, ReedSolomon] = {}
        self.ops_completed = 0
        #: CRUSH work counter of the last placement (profiling hook).
        self.last_placement_ops = 0

    def _codec(self, pool: Pool) -> ReedSolomon:
        if pool.pool_id not in self._codecs:
            self._codecs[pool.pool_id] = ReedSolomon(pool.k, pool.m)
        return self._codecs[pool.pool_id]

    def compute_placement(self, pool: Pool, object_name: str) -> list[int]:
        """Object -> acting set via CRUSH (cache invalidated on epoch bump)."""
        if self._placement_epoch != self.osdmap.epoch:
            self.placement.invalidate()
            self._placement_epoch = self.osdmap.epoch
        _pg, acting = self.placement.object_to_osds(
            pool.pool_id, object_name, pool.pg_num, pool.rule, pool.size
        )
        self.last_placement_ops = self.placement.mapper.last_ops
        return acting

    # -- replicated pools ---------------------------------------------------------

    def write_replicated(
        self,
        pool: Pool,
        object_name: str,
        data: bytes,
        offset: int = 0,
        direct: bool = False,
        sequential: bool = False,
    ) -> Generator:
        """Process: durable write of ``data`` to all replicas.

        ``direct=True`` fans out from the client (DeLiBA); otherwise the
        op routes through the primary, which forwards sub-ops.
        """
        if pool.pool_type != PoolType.REPLICATED:
            raise StorageError(f"pool {pool.name!r} is not replicated")
        acting = [o for o in self.compute_placement(pool, object_name) if o != CRUSH_ITEM_NONE]
        if not acting:
            raise StorageError(f"no acting set for {object_name!r} (cluster too degraded)")
        if direct:
            procs = []
            for target in acting:
                op = OsdOp(
                    OpKind.WRITE_DIRECT,
                    pool.pool_id,
                    object_name,
                    offset,
                    len(data),
                    data=data,
                    sequential=sequential,
                    epoch=self.osdmap.epoch,
                )
                procs.append(self.env.process(self.call(f"osd.{target}", op), name="wr"))
            results = yield self.env.all_of(procs)
            self._check_replies(results.values())
        else:
            op = OsdOp(
                OpKind.WRITE,
                pool.pool_id,
                object_name,
                offset,
                len(data),
                data=data,
                acting=tuple(acting),
                sequential=sequential,
                epoch=self.osdmap.epoch,
            )
            reply = yield from self.call(f"osd.{acting[0]}", op)
            self._check_replies([reply])
        self.ops_completed += 1

    def read_replicated(
        self, pool: Pool, object_name: str, offset: int, length: int
    ) -> Generator:
        """Process: read from the primary replica; returns bytes."""
        if pool.pool_type != PoolType.REPLICATED:
            raise StorageError(f"pool {pool.name!r} is not replicated")
        acting = [o for o in self.compute_placement(pool, object_name) if o != CRUSH_ITEM_NONE]
        if not acting:
            raise StorageError(f"no acting set for {object_name!r}")
        op = OsdOp(
            OpKind.READ, pool.pool_id, object_name, offset, length, epoch=self.osdmap.epoch
        )
        reply = yield from self.call(f"osd.{acting[0]}", op)
        if not reply.ok and reply.error.startswith("no such object"):
            # ENOENT: unwritten extents of a block image read as zeros
            # (librbd semantics).
            self.ops_completed += 1
            return b"\x00" * length
        self._check_replies([reply])
        self.ops_completed += 1
        return reply.data

    # -- erasure-coded pools ----------------------------------------------------------

    def write_ec(
        self,
        pool: Pool,
        object_name: str,
        data: bytes,
        direct: bool = False,
        sequential: bool = False,
    ) -> Generator:
        """Process: EC write of a whole object.

        ``direct=True``: the client encodes and addresses each shard OSD
        itself (codec CPU/FPGA cost is charged by the framework layer).
        Otherwise the primary encodes and fans out.
        """
        if pool.pool_type != PoolType.ERASURE:
            raise StorageError(f"pool {pool.name!r} is not erasure-coded")
        acting = self.compute_placement(pool, object_name)
        targets = [(rank, osd) for rank, osd in enumerate(acting) if osd != CRUSH_ITEM_NONE]
        if len(targets) < pool.k:
            raise StorageError(
                f"only {len(targets)} shard targets for {object_name!r}, need k={pool.k}"
            )
        if direct:
            shards = self._codec(pool).encode(data)
            procs = []
            for rank, target in targets:
                op = OsdOp(
                    OpKind.SHARD_WRITE,
                    pool.pool_id,
                    object_name,
                    0,
                    len(shards[rank]),
                    data=shards[rank],
                    shard=rank,
                    sequential=sequential,
                    epoch=self.osdmap.epoch,
                )
                procs.append(self.env.process(self.call(f"osd.{target}", op), name="shard"))
            results = yield self.env.all_of(procs)
            self._check_replies(results.values())
        else:
            primary = targets[0][1]
            op = OsdOp(
                OpKind.EC_WRITE,
                pool.pool_id,
                object_name,
                0,
                len(data),
                data=data,
                acting=tuple(osd for _, osd in targets),
                sequential=sequential,
                epoch=self.osdmap.epoch,
            )
            reply = yield from self.call(f"osd.{primary}", op)
            self._check_replies([reply])
        self.ops_completed += 1

    def read_ec(
        self, pool: Pool, object_name: str, length: int, direct: bool = False
    ) -> Generator:
        """Process: EC read of a whole object of known ``length``."""
        if pool.pool_type != PoolType.ERASURE:
            raise StorageError(f"pool {pool.name!r} is not erasure-coded")
        acting = self.compute_placement(pool, object_name)
        targets = [(rank, osd) for rank, osd in enumerate(acting) if osd != CRUSH_ITEM_NONE]
        if len(targets) < pool.k:
            raise StorageError(f"unrecoverable {object_name!r}: {len(targets)} < k={pool.k}")
        if direct:
            codec = self._codec(pool)
            shard_len = codec.shard_size(length)
            shards = yield from gather_shards(
                self, pool, object_name, targets, shard_len, self.osdmap.epoch
            )
            self.ops_completed += 1
            return codec.decode(shards, length)
        primary = targets[0][1]
        op = OsdOp(
            OpKind.EC_READ,
            pool.pool_id,
            object_name,
            0,
            length,
            acting=tuple(osd for _, osd in targets),
            epoch=self.osdmap.epoch,
        )
        reply = yield from self.call(f"osd.{primary}", op)
        self._check_replies([reply])
        self.ops_completed += 1
        return reply.data

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _check_replies(replies) -> None:
        for reply in replies:
            if isinstance(reply, OsdReply) and not reply.ok:
                raise StorageError(f"osd op {reply.op_id} failed: {reply.error}")


def gather_shards(messenger, pool, object_name, targets, shard_len, epoch, preloaded=None):
    """Process: collect >= k shards, retrying beyond the first k ranks.

    Phase 1 reads the first k ranks in parallel (the healthy fast path);
    if some targets lack their shard (degraded placement before recovery
    finished), further ranks are queried until k shards are in hand.
    Shared between the client-direct path and the EC primary, which
    passes its locally-read shard via ``preloaded``.
    """
    env = messenger.env
    shards: list[Optional[bytes]] = [None] * pool.size
    got = 0
    if preloaded:
        for rank, data in preloaded.items():
            shards[rank] = data
            got += 1
    remaining = [(rank, tgt) for rank, tgt in targets if shards[rank] is None]
    idx = 0
    while got < pool.k and idx < len(remaining):
        batch = remaining[idx : idx + (pool.k - got)]
        idx += len(batch)
        procs = {}
        for rank, target in batch:
            op = OsdOp(
                OpKind.SHARD_READ,
                pool.pool_id,
                object_name,
                0,
                shard_len,
                shard=rank,
                epoch=epoch,
            )
            procs[rank] = env.process(messenger.call(f"osd.{target}", op), name="shard")
        results = yield env.all_of(list(procs.values()))
        for rank, proc in procs.items():
            reply = results[proc]
            if reply.ok:
                shards[rank] = reply.data
                got += 1
    if got < pool.k:
        raise StorageError(
            f"object {object_name!r}: only {got} shards readable, need k={pool.k}"
        )
    return shards
