"""The OSD daemon: serves object I/O, replication sub-ops, and EC shards.

Each OSD owns one storage device and object store, has a bounded worker
pool (``op_threads``), and talks to peers through the fabric.  Write
paths implement both topologies the paper compares:

* **primary fan-out** (software Ceph): the client sends one op to the
  primary, which applies locally and forwards replica sub-ops — two
  network hops for replicas;
* **direct** ops (DeLiBA): the client(-side FPGA) addresses every
  replica/shard itself, so each copy takes one hop.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..ec import ReedSolomon
from ..errors import StorageError
from ..obs.context import wrap_span
from ..sim import NULL_METRICS, Environment, Resource
from ..units import us
from .fabric import Fabric, Messenger, traced_call
from .objects import ObjectStore
from .ops import OpKind, OsdOp, OsdReply
from .osdmap import OSDMap, PoolType
from .storage import StorageDevice


def default_ec_encode_ns(k: int, m: int, nbytes: int) -> int:
    """Software Reed-Solomon encode time on an OSD core.

    Fixed cost from op setup plus a per-parity-byte term; calibrated so a
    4 kB object at k=4, m=2 costs a few microseconds, consistent with the
    per-kernel software profile in paper Table I scaling down from its
    65 us full-object figure.
    """
    return us(3) + int(nbytes * m / max(1, k) * 0.9)


def default_ec_decode_ns(k: int, m: int, nbytes: int) -> int:
    """Software RS decode (matrix inversion amortized, axpy dominated)."""
    return us(4) + int(nbytes * 1.1)


@dataclass
class OsdConfig:
    """Tunable costs of OSD request processing."""

    #: CPU time per op before touching the device (PG lock, attrs, journal).
    op_cost_ns: int = us(5)
    #: Worker threads per OSD.
    op_threads: int = 4
    #: Extra CPU on replicated-write primaries (building sub-ops).
    rep_fanout_cost_ns: int = us(2)
    ec_encode_ns: Callable[[int, int, int], int] = default_ec_encode_ns
    ec_decode_ns: Callable[[int, int, int], int] = default_ec_decode_ns
    #: Deadline a primary gives its replica/shard sub-ops; None = wait
    #: forever (fault-free default — crashed peers still fail fast via
    #: connection resets, only silent message loss needs this).
    subop_timeout_ns: Optional[int] = None


#: Completed-write replies remembered per OSD for idempotent replay.
REPLY_CACHE_SIZE = 512

#: Op kinds whose replay must not re-apply (reads are naturally
#: idempotent and their data may legitimately change between calls).
_MUTATING_KINDS = frozenset(
    {
        OpKind.WRITE,
        OpKind.WRITE_DIRECT,
        OpKind.REP_WRITE,
        OpKind.SHARD_WRITE,
        OpKind.EC_WRITE,
        OpKind.DELETE,
    }
)

#: Client mutations that must wait behind recovery of their object: a
#: write applied over a missing base could be clobbered (or clobber)
#: when the backfill push lands, so the PG gate holds them until the
#: object is recovered on this OSD.  Recovery's own PUSH/DELETE ops are
#: exempt — they *are* the recovery traffic the gate waits for.
_GATED_KINDS = frozenset(
    {
        OpKind.WRITE,
        OpKind.WRITE_DIRECT,
        OpKind.REP_WRITE,
        OpKind.SHARD_WRITE,
        OpKind.EC_WRITE,
    }
)

#: Sub-op kinds a primary fans out while holding its own worker slot.
#: Under QoS these take the scheduler's express lane when they arrive
#: from a peer OSD: the parent already passed (and was charged at) the
#: primary's admission gate, and competing for primary slots could
#: deadlock the pools once they fill with mutually-waiting primaries.
_SUBOP_KINDS = frozenset({OpKind.REP_WRITE, OpKind.SHARD_WRITE, OpKind.SHARD_READ})


def shard_object_name(object_name: str, shard: int) -> str:
    """Object-store key of one EC shard."""
    return f"{object_name}.s{shard}"


def base_object_name(store_key: str) -> str:
    """Logical object name of a store key (strips an EC-shard suffix)."""
    head, sep, tail = store_key.rpartition(".s")
    if sep and tail.isdigit():
        return head
    return store_key


class OsdDaemon(Messenger):
    """One OSD process."""

    def __init__(
        self,
        env: Environment,
        osd_id: int,
        fabric: Fabric,
        device: StorageDevice,
        osdmap: OSDMap,
        config: Optional[OsdConfig] = None,
        metrics=None,
    ):
        super().__init__(env, fabric, f"osd.{osd_id}")
        self.osd_id = osd_id
        self.device = device
        self.osdmap = osdmap
        self.config = config or OsdConfig()
        self.store = ObjectStore()
        self.cpu = Resource(env, capacity=self.config.op_threads, name=f"osd.{osd_id}.workers")
        self.ops_served = 0
        #: store key -> version of the last applied mutation (pglog).  A
        #: version is the op_id of the logical client write (replica and
        #: shard sub-ops inherit the parent's id), so recovery pushes can
        #: be ordered against writes made while they were in flight.
        self.versions: dict[str, int] = {}
        #: Set by ``Cluster.enable_recovery``; gates client mutations on
        #: objects still missing locally (see ``repro.osd.recovery``).
        self.recovery_ledger = None
        #: Set by ``Cluster.enable_qos``: the dmClock admission gate in
        #: front of the worker pool (see ``repro.osd.qos``).  None keeps
        #: the request path byte-identical to the unscheduled seed.
        self.qos = None
        #: True while this OSD is an empty, freshly revived member being
        #: backfilled: absent objects answer "missing during backfill"
        #: (client fails over) instead of "no such object" (which clients
        #: read as authoritative zeros — silent stale/lost data).
        self.backfill_reserve = False
        #: Set by ``Cluster`` when a :class:`~repro.osd.wal.DurabilityConfig`
        #: is configured: the transactional commit pipeline.  None keeps
        #: the write path byte-identical to the volatile seed.
        self.wal = None
        #: Set by ``repro.obs.health.HealthLayer.attach``: the always-on
        #: slow-op / SLO accounting sink.  None keeps the request path
        #: byte-identical to the unmonitored seed.
        self.health = None
        self._codecs: dict[int, ReedSolomon] = {}
        #: op_id -> reply for completed mutations (pglog dup detection):
        #: a replayed or duplicated write resends the recorded ack
        #: instead of re-applying.
        self._reply_cache: OrderedDict[int, OsdReply] = OrderedDict()
        self.replays_absorbed = 0
        metrics = metrics or NULL_METRICS
        self._m_ops = metrics.counter(f"osd.{osd_id}.ops")
        self._m_op_latency = metrics.latency(f"osd.{osd_id}.op_latency")
        self._m_replays = metrics.counter("osd.replays_absorbed")

    def stop(self, status=None) -> None:
        """Crash the OSD; also kill the WAL's background applies.

        ``status`` (a :class:`~repro.status.BlkStatus`) selects what
        peers with in-flight ops observe — TRANSPORT for a process
        crash, AGAIN for a power loss.
        """
        if status is None:
            super().stop()
        else:
            super().stop(status)
        if self.wal is not None:
            self.wal.halt()

    def restart_from_wal(self):
        """Durable restart: replay the WAL instead of reviving empty.

        The replayed store keeps everything acked before the crash, so
        recovery only has to ship the delta written during the outage —
        no backfill reserve, no full re-push.  Returns the
        :class:`~repro.osd.wal.WalReplayStats`.
        """
        if self.wal is None:
            raise StorageError(f"osd.{self.osd_id} has no WAL to restart from")
        stats = self.wal.recover()
        self._reply_cache.clear()
        self.backfill_reserve = False
        return stats

    def reset_for_backfill(self) -> None:
        """Wipe state for a revived-empty rejoin (the pre-failure store,
        version log, and reply cache are stale) and enter backfill
        reserve: absent reads answer "missing during backfill" until the
        recovery path repopulates this OSD."""
        self.store.clear()
        self.versions.clear()
        self._reply_cache.clear()
        self.backfill_reserve = True

    def codec_for(self, pool_id: int) -> ReedSolomon:
        """The RS codec for an EC pool (cached)."""
        if pool_id not in self._codecs:
            pool = self.osdmap.pool(pool_id)
            if pool.pool_type != PoolType.ERASURE:
                raise StorageError(f"pool {pool_id} is not erasure-coded")
            self._codecs[pool_id] = ReedSolomon(pool.k, pool.m)
        return self._codecs[pool_id]

    # -- local apply helpers -------------------------------------------------

    def _apply_write(
        self,
        name: str,
        offset: int,
        data: bytes,
        sequential: bool,
        version: int = 0,
        span=None,
        whole: bool = False,
    ) -> Generator:
        if self.wal is not None:
            # Transactional path: durable (journaled + barriered) before
            # return; the pipeline updates the visible store itself.
            yield from self.wal.write(
                name, offset, data, sequential, version, span=span, whole=whole
            )
            return
        yield from self.device.write(name, offset, len(data), sequential)
        self.store.write(name, offset, data)

    def _apply_read(self, name: str, offset: int, length: int) -> Generator:
        yield from self.device.read(name, offset, length)
        return self.store.read(name, offset, length)

    def _missing_locally(self, pool_id: int, key: str) -> bool:
        """True when ``key``'s absence means "not yet backfilled" rather
        than "never existed" — callers must fail over, not serve zeros."""
        if self.backfill_reserve:
            return True
        ledger = self.recovery_ledger
        return ledger is not None and ledger.is_missing(self.osd_id, pool_id, key)

    def _gate_key(self, op: OsdOp) -> Optional[str]:
        """Store key a client mutation must wait on before applying."""
        if op.kind is OpKind.SHARD_WRITE:
            return shard_object_name(op.object_name, op.shard)
        if op.kind is OpKind.EC_WRITE:
            # The primary's own shard; peer shards gate at each peer.
            if self.osd_id in op.acting:
                return shard_object_name(op.object_name, op.acting.index(self.osd_id))
            return None
        return op.object_name

    # -- request handling ----------------------------------------------------------

    def on_request(self, op: OsdOp, src: str) -> Generator:
        """Dispatch one op under the worker pool."""
        t0 = self.env.now
        leg = getattr(op, "obs_span", None)
        cached = self._reply_cache.get(op.op_id)
        if cached is not None:
            # Idempotent replay (client retry or duplicated message):
            # the mutation already applied — resend the recorded ack.
            self.replays_absorbed += 1
            self._m_replays.add()
            yield self.env.timeout(self.config.op_cost_ns)
            if leg is not None:
                leg.record("osd.replay", "service", t0, self.env.now, osd=self.osd_id)
            yield from self.reply_to(src, cached)
            return
        if self.recovery_ledger is not None and op.kind in _GATED_KINDS:
            # Gate BEFORE taking a worker slot: the recovery push this
            # op waits for needs a slot on this same OSD, so holding one
            # here would deadlock the worker pool.
            key = self._gate_key(op)
            waited = False
            if key is not None:
                while (gate := self.recovery_ledger.write_gate(self.osd_id, op.pool_id, key)) is not None:
                    waited = True
                    yield gate
            if waited and leg is not None:
                leg.record("osd.recovery-gate", "queue", t0, self.env.now, osd=self.osd_id)
        qos_phase = 0
        express = (
            self.qos is not None
            and op.kind in _SUBOP_KINDS
            and src.startswith("osd.")
        )
        if express:
            # Peer sub-op: arbitrated at its primary's gate; serve from
            # the express lane so it never waits behind a primary that
            # is itself waiting on sub-ops (see _SUBOP_KINDS).
            req = self.qos.sub_lane.request()
            yield req
            pool = self.qos.sub_lane
        else:
            if self.qos is not None:
                # dmClock admission: the scheduler (not the FIFO resource
                # queue) decides service order; once dispatched, at most
                # op_threads ops are outstanding so the slot claim below
                # never waits.
                qos_phase = yield from self.qos.admit(op)
            req = self.cpu.request()
            yield req
            pool = self.cpu
        svc = None
        if leg is not None:
            # Worker-pool wait vs. actual service, split explicitly so
            # the critical path can tell saturation from slow handlers.
            meta = {"osd": self.osd_id}
            if op.qos is not None:
                meta["tenant"] = op.qos.tenant
                meta["qos_class"] = op.qos.svc
            leg.record("osd.queue", "queue", t0, self.env.now, **meta)
            svc = leg.child("osd.service", "service", **meta)
            op._obs_service = svc
        try:
            yield self.env.timeout(self.config.op_cost_ns)
            handler = {
                OpKind.READ: self._do_read,
                OpKind.WRITE: self._do_primary_write,
                OpKind.WRITE_DIRECT: self._do_direct_write,
                OpKind.REP_WRITE: self._do_direct_write,
                OpKind.SHARD_WRITE: self._do_shard_write,
                OpKind.SHARD_READ: self._do_shard_read,
                OpKind.EC_WRITE: self._do_ec_primary_write,
                OpKind.EC_READ: self._do_ec_primary_read,
                OpKind.DELETE: self._do_delete,
                OpKind.PING: self._do_ping,
                OpKind.PG_LIST: self._do_pg_list,
                OpKind.PULL: self._do_pull,
                OpKind.PUSH: self._do_push,
            }.get(op.kind)
            if handler is None:
                reply = OsdReply(op.op_id, False, error=f"unknown op kind {op.kind}")
            else:
                try:
                    reply = yield from handler(op)
                except StorageError as exc:
                    reply = OsdReply(op.op_id, False, error=str(exc))
        finally:
            pool.release(req)
            if self.qos is not None and not express:
                self.qos.release()
        reply.epoch = self.osdmap.epoch
        reply.qos_phase = qos_phase
        if reply.ok and op.kind in _MUTATING_KINDS:
            self._reply_cache[op.op_id] = reply
            while len(self._reply_cache) > REPLY_CACHE_SIZE:
                self._reply_cache.popitem(last=False)
        self.ops_served += 1
        self._m_ops.add()
        self._m_op_latency.record(self.env.now - t0)
        if self.health is not None:
            self.health.observe_osd(
                self.osd_id,
                op.kind.value,
                op.qos.tenant if op.qos is not None else "",
                self.env.now - t0,
                reply.ok,
            )
        if svc is not None:
            svc.finish(ok=reply.ok)
        yield from self.reply_to(src, reply)

    def _do_read(self, op: OsdOp) -> Generator:
        if op.object_name not in self.store and self._missing_locally(
            op.pool_id, op.object_name
        ):
            raise StorageError(f"object {op.object_name!r} missing during backfill")
        data = yield from self._apply_read(op.object_name, op.offset, op.length)
        return OsdReply(op.op_id, True, data=data)

    def _do_direct_write(self, op: OsdOp) -> Generator:
        if op.data is None:
            raise StorageError(f"write op {op.op_id} carries no data")
        yield from self._apply_write(
            op.object_name,
            op.offset,
            op.data,
            op.sequential,
            version=op.version or op.op_id,
            span=getattr(op, "_obs_service", None),
        )
        self.versions[op.object_name] = op.version or op.op_id
        return OsdReply(op.op_id, True)

    def _do_primary_write(self, op: OsdOp) -> Generator:
        """Replicated write via primary: local apply + parallel sub-ops."""
        if op.data is None:
            raise StorageError(f"write op {op.op_id} carries no data")
        yield self.env.timeout(self.config.rep_fanout_cost_ns)
        svc = getattr(op, "_obs_service", None)
        replicas = [o for o in op.acting if o != self.osd_id]
        sub_ops = []
        for peer in replicas:
            sub = OsdOp(
                OpKind.REP_WRITE,
                op.pool_id,
                op.object_name,
                op.offset,
                len(op.data),
                data=op.data,
                sequential=op.sequential,
                epoch=op.epoch,
                version=op.op_id,
                qos=op.qos.derive() if op.qos is not None else None,
            )
            sub_span = svc.child(f"osd.{peer}", "rpc") if svc is not None else None
            sub_ops.append(
                self.env.process(
                    traced_call(
                        self, f"osd.{peer}", sub, self.config.subop_timeout_ns, sub_span
                    ),
                    name="rep",
                )
            )
        local_span = svc.child("local-apply", "service") if svc is not None else None
        local = self.env.process(
            wrap_span(
                local_span,
                self._apply_write(
                    op.object_name, op.offset, op.data, op.sequential, version=op.op_id
                ),
            ),
            name="local",
        )
        results = yield self.env.all_of(sub_ops + [local])
        self.versions[op.object_name] = op.op_id
        for proc in sub_ops:
            rep = results[proc]
            if not rep.ok:
                return OsdReply(op.op_id, False, error=f"replica failed: {rep.error}")
        return OsdReply(op.op_id, True)

    def _do_shard_write(self, op: OsdOp) -> Generator:
        if op.data is None or op.shard < 0:
            raise StorageError(f"shard write {op.op_id} missing data or shard index")
        name = shard_object_name(op.object_name, op.shard)
        yield from self._apply_write(
            name,
            op.offset,
            op.data,
            op.sequential,
            version=op.version or op.op_id,
            span=getattr(op, "_obs_service", None),
        )
        self.versions[name] = op.version or op.op_id
        return OsdReply(op.op_id, True)

    def _do_shard_read(self, op: OsdOp) -> Generator:
        if op.shard < 0:
            raise StorageError(f"shard read {op.op_id} missing shard index")
        name = shard_object_name(op.object_name, op.shard)
        if name not in self.store and self._missing_locally(op.pool_id, name):
            raise StorageError(f"object {name!r} missing during backfill")
        data = yield from self._apply_read(name, op.offset, op.length)
        return OsdReply(op.op_id, True, data=data)

    def _do_ec_primary_write(self, op: OsdOp) -> Generator:
        """EC write via primary: encode on the OSD CPU, fan out shards."""
        if op.data is None:
            raise StorageError(f"ec write {op.op_id} carries no data")
        pool = self.osdmap.pool(op.pool_id)
        codec = self.codec_for(op.pool_id)
        svc = getattr(op, "_obs_service", None)
        t_enc = self.env.now
        yield self.env.timeout(self.config.ec_encode_ns(pool.k, pool.m, len(op.data)))
        if svc is not None:
            svc.record("ec-encode", "compute", t_enc, self.env.now, k=pool.k, m=pool.m)
        shards = codec.encode(op.data)
        procs = []
        local_shard = None
        for rank, target in enumerate(op.acting):
            if target == self.osd_id:
                local_shard = rank
                continue
            sub = OsdOp(
                OpKind.SHARD_WRITE,
                op.pool_id,
                op.object_name,
                0,
                len(shards[rank]),
                data=shards[rank],
                shard=rank,
                sequential=op.sequential,
                epoch=op.epoch,
                version=op.op_id,
                qos=op.qos.derive() if op.qos is not None else None,
            )
            sub_span = (
                svc.child(f"osd.{target}", "rpc", shard=rank) if svc is not None else None
            )
            procs.append(
                self.env.process(
                    traced_call(
                        self, f"osd.{target}", sub, self.config.subop_timeout_ns, sub_span
                    ),
                    name="shard",
                )
            )
        if local_shard is not None:
            name = shard_object_name(op.object_name, local_shard)
            local_span = (
                svc.child("local-shard", "service", shard=local_shard)
                if svc is not None
                else None
            )
            procs.append(
                self.env.process(
                    wrap_span(
                        local_span,
                        self._apply_write(
                            name, 0, shards[local_shard], op.sequential, version=op.op_id
                        ),
                    ),
                    name="local",
                )
            )
        results = yield self.env.all_of(procs)
        if local_shard is not None:
            self.versions[shard_object_name(op.object_name, local_shard)] = op.op_id
        for proc, value in results.items():
            if isinstance(value, OsdReply) and not value.ok:
                return OsdReply(op.op_id, False, error=f"shard failed: {value.error}")
        return OsdReply(op.op_id, True)

    def _do_ec_primary_read(self, op: OsdOp) -> Generator:
        """EC read via primary: gather k shards (local fast path +
        degraded retry), decode, return bytes."""
        from .client import gather_shards  # local import avoids a cycle

        pool = self.osdmap.pool(op.pool_id)
        codec = self.codec_for(op.pool_id)
        shard_len = codec.shard_size(op.length)
        preloaded = {}
        remote_targets = []
        for rank, target in enumerate(op.acting):
            if target == self.osd_id:
                key = shard_object_name(op.object_name, rank)
                if key in self.store:
                    preloaded[rank] = yield from self._apply_read(key, 0, shard_len)
            else:
                remote_targets.append((rank, target))
        svc = getattr(op, "_obs_service", None)
        try:
            shards, _degraded = yield from gather_shards(
                self, pool, op.object_name, remote_targets, shard_len, op.epoch, preloaded,
                timeout_ns=self.config.subop_timeout_ns, ctx=svc, qos=op.qos,
            )
        except StorageError as exc:
            return OsdReply(op.op_id, False, error=str(exc))
        t_dec = self.env.now
        yield self.env.timeout(self.config.ec_decode_ns(pool.k, pool.m, op.length))
        if svc is not None:
            svc.record("ec-decode", "compute", t_dec, self.env.now, k=pool.k, m=pool.m)
        data = codec.decode(shards, op.length)
        return OsdReply(op.op_id, True, data=data)

    def _do_ping(self, op: OsdOp) -> Generator:
        yield self.env.timeout(0)
        return OsdReply(op.op_id, True)

    def _do_delete(self, op: OsdOp) -> Generator:
        if self.wal is not None:
            # Journal first so the tombstone (or trim) survives a crash;
            # the visible store/version updates below stay unchanged.
            yield from self.wal.delete(
                op.object_name, op.version if op.version < 0 else op.version or op.op_id
            )
        if op.version < 0:
            # Recovery trim of a stale copy: erase the version entry so
            # no tombstone blocks a future backfill if this OSD rejoins
            # the acting set.
            self.versions.pop(op.object_name, None)
        else:
            # Tombstone: a backfill push racing this delete must lose.
            self.versions[op.object_name] = op.version or op.op_id
            if op.object_name not in self.store and self._missing_locally(
                op.pool_id, op.object_name
            ):
                # Deleting an object not yet backfilled here: the
                # tombstone alone suffices — the push will be discarded.
                yield self.env.timeout(0)
                return OsdReply(op.op_id, True)
        self.store.delete(op.object_name)
        yield self.env.timeout(0)
        return OsdReply(op.op_id, True)

    # -- recovery ops (repro.osd.recovery) -----------------------------------

    #: CPU per store key examined while building a PG listing.
    PG_LIST_SCAN_NS = 100

    def _do_pg_list(self, op: OsdOp) -> Generator:
        """Peering: list this OSD's store keys that hash into one PG,
        with their versions and sizes (the authoritative-object census)."""
        from ..crush.placement import object_to_pg  # local import avoids a cycle

        if op.pg < 0:
            raise StorageError(f"pg_list op {op.op_id} missing pg index")
        pool = self.osdmap.pool(op.pool_id)
        listing: dict[str, tuple[int, int]] = {}
        names = self.store.object_names()
        for key in names:
            if object_to_pg(base_object_name(key), pool.pg_num) == op.pg:
                listing[key] = (self.versions.get(key, 0), self.store.object_size(key))
        yield self.env.timeout(self.PG_LIST_SCAN_NS * max(1, len(names)))
        return OsdReply(op.op_id, True, listing=listing)

    def _do_pull(self, op: OsdOp) -> Generator:
        """Recovery read: whole store key (object or shard) + version.
        Goes through the device, so pulls contend with client reads."""
        name = op.object_name
        if name not in self.store:
            raise StorageError(f"no such object {name!r}")
        size = self.store.object_size(name)
        data = yield from self._apply_read(name, 0, size)
        return OsdReply(op.op_id, True, data=data, version=self.versions.get(name, 0))

    def _do_push(self, op: OsdOp) -> Generator:
        """Recovery write: version-guarded whole-object install.  A push
        carrying data pulled at version V applies only if this OSD has
        seen nothing newer — a client write (or delete) that landed here
        during the pull/push window wins, never the stale backfill."""
        if op.data is None:
            raise StorageError(f"push op {op.op_id} carries no data")
        name = op.object_name
        if self.versions.get(name, 0) > op.version:
            yield self.env.timeout(0)
            return OsdReply(op.op_id, True, stale=True)
        if name in self.store:
            # Whole-object install: drop any shorter/partial base first.
            self.store.delete(name)
        yield from self._apply_write(name, 0, op.data, True, version=op.version, whole=True)
        self.versions[name] = op.version
        return OsdReply(op.op_id, True)
