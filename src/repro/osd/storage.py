"""Storage-device latency/bandwidth models (NVMe SSD, SATA SSD, HDD, SMR).

A device is a queued server: fixed per-op media latency (different for
sequential and random access, reads and writes) plus size/bandwidth
transfer time, with bounded internal parallelism (NVMe queue channels).
Sequential reads additionally hit a simple readahead cache — this is the
mechanism behind the paper's ~2x seq-vs-random read latency gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..errors import StorageError
from ..sim import Environment, Resource, RngStream
from ..units import mib, transfer_ns, us


@dataclass(frozen=True)
class MediaProfile:
    """Latency/bandwidth parameters for one device class."""

    name: str
    seq_read_ns: int
    rand_read_ns: int
    seq_write_ns: int
    rand_write_ns: int
    read_bw: float  # bytes/sec
    write_bw: float
    channels: int  # internal parallelism
    readahead_hit_ns: int  # service time on readahead-cache hit
    jitter_sigma: float = 0.08
    #: Cost of a FLUSH/FUA barrier draining the volatile write-back
    #: cache to stable media (cheap on NVMe with PLP-less DRAM cache,
    #: a full track-cache destage on spinning rust).
    flush_ns: int = us(100)


#: Datacenter NVMe (the paper's OSD drives are flash-backed).
NVME_SSD = MediaProfile(
    "nvme-ssd",
    seq_read_ns=us(16),
    rand_read_ns=us(20),
    seq_write_ns=us(14),
    rand_write_ns=us(16),
    read_bw=3.0e9,
    write_bw=2.0e9,
    channels=8,
    readahead_hit_ns=us(3),
    flush_ns=us(40),
)

#: SATA SSD.
SATA_SSD = MediaProfile(
    "sata-ssd",
    seq_read_ns=us(60),
    rand_read_ns=us(90),
    seq_write_ns=us(50),
    rand_write_ns=us(70),
    read_bw=0.5e9,
    write_bw=0.45e9,
    channels=4,
    readahead_hit_ns=us(5),
    flush_ns=us(400),
)

#: 7.2k HDD.
HDD = MediaProfile(
    "hdd",
    seq_read_ns=us(150),
    rand_read_ns=int(4.2e6),  # ~4.2 ms seek+rotate
    seq_write_ns=us(150),
    rand_write_ns=int(4.6e6),
    read_bw=0.2e9,
    write_bw=0.19e9,
    channels=1,
    readahead_hit_ns=us(20),
    flush_ns=int(2.0e6),
)

#: Host-managed SMR HDD (the paper ran tests on SMR; random writes must
#: go through zone-append-style sequentialization, modeled as a penalty).
SMR_HDD = MediaProfile(
    "smr-hdd",
    seq_read_ns=us(160),
    rand_read_ns=int(4.5e6),
    seq_write_ns=us(180),
    rand_write_ns=int(9.0e6),
    read_bw=0.19e9,
    write_bw=0.15e9,
    channels=1,
    readahead_hit_ns=us(20),
    flush_ns=int(3.0e6),
)

PROFILES = {p.name: p for p in (NVME_SSD, SATA_SSD, HDD, SMR_HDD)}


class StorageDevice:
    """One physical drive behind an OSD."""

    def __init__(
        self,
        env: Environment,
        profile: MediaProfile = NVME_SSD,
        rng: RngStream | None = None,
        name: str = "",
        readahead_window: int = mib(1),
    ):
        self.env = env
        self.profile = profile
        self.rng = rng
        self.name = name
        self._channels = Resource(env, capacity=profile.channels, name=f"dev:{name}")
        # object -> (offset after last read, bytes served from the current
        # readahead window).
        self._read_cursor: dict[str, tuple[int, int]] = {}
        self.readahead_window = readahead_window
        # Volatile write-back cache: persistence actions queued by the
        # WAL pipeline, made stable only by flush() (FLUSH/FUA barrier).
        # A power loss drops everything still queued here.
        self._volatile: list = []
        self._flush_lock = Resource(env, capacity=1, name=f"dev:{name}:flush")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.flushes = 0
        self.flushed_entries = 0

    def _jitter(self, mean_ns: int) -> int:
        if self.rng is None:
            return mean_ns
        return self.rng.lognormal_ns(mean_ns, self.profile.jitter_sigma)

    def read(self, obj: str, offset: int, length: int) -> Generator:
        """Process: one read I/O against the media.

        Sequential streams are detected from the per-object cursor: a read
        continuing the stream is served from readahead
        (``readahead_hit_ns``) until the window is consumed, at which
        point one media fetch (``seq_read_ns``) refills it.  Any
        non-contiguous read pays the full random latency.
        """
        if length <= 0:
            raise StorageError(f"read length must be > 0, got {length}")
        cursor = self._read_cursor.get(obj)
        if cursor is not None and cursor[0] == offset:
            consumed = cursor[1] + length
            if consumed >= self.readahead_window:
                latency = self.profile.seq_read_ns  # refill the window
                consumed = 0
            else:
                latency = self.profile.readahead_hit_ns
        else:
            latency = self.profile.rand_read_ns
            consumed = 0
        service = self._jitter(latency) + transfer_ns(length, self.profile.read_bw)
        yield from self._channels.using(service)
        self._read_cursor[obj] = (offset + length, consumed)
        self.reads += 1
        self.bytes_read += length

    def write(self, obj: str, offset: int, length: int, sequential: bool) -> Generator:
        """Process: one write I/O (caller classifies the access pattern)."""
        if length <= 0:
            raise StorageError(f"write length must be > 0, got {length}")
        latency = self.profile.seq_write_ns if sequential else self.profile.rand_write_ns
        service = self._jitter(latency) + transfer_ns(length, self.profile.write_bw)
        yield from self._channels.using(service)
        self.writes += 1
        self.bytes_written += length

    def cache_write(self, entry) -> None:
        """Queue a persistence action in the volatile write-back cache.

        ``entry`` is any object with a ``persist()`` method; it becomes
        stable only when a subsequent :meth:`flush` barrier runs it.
        """
        self._volatile.append(entry)

    def flush(self) -> Generator:
        """Process: FLUSH/FUA barrier — drain the volatile cache.

        Persists (in order) every entry that was queued when the barrier
        was issued.  Entries queued while the flush is in flight stay
        volatile, matching real cache-flush semantics.
        """
        req = self._flush_lock.request()
        try:
            yield req
            batch = len(self._volatile)
            yield from self._channels.using(self._jitter(self.profile.flush_ns))
            for entry in self._volatile[:batch]:
                entry.persist()
            del self._volatile[:batch]
            self.flushes += 1
            self.flushed_entries += batch
        finally:
            self._flush_lock.release(req)

    def drop_volatile(self) -> list:
        """Power loss: return and clear the un-flushed cache entries."""
        entries = self._volatile
        self._volatile = []
        self._read_cursor.clear()
        return entries

    @property
    def volatile_depth(self) -> int:
        """Entries sitting in the volatile write-back cache."""
        return len(self._volatile)

    @property
    def queue_depth(self) -> int:
        """Outstanding I/Os (in service + waiting)."""
        return self._channels.count + self._channels.queue_len
