"""Scrubbing: background integrity verification of replicas and EC shards.

Ceph periodically *scrubs* placement groups — comparing object metadata
(light scrub) or full content checksums (deep scrub) across replicas —
and repairs inconsistencies from a healthy copy.  The simulated cluster
gets the same machinery, which the failure-injection tests use to prove
that corrupt replicas are detected and healed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..crush import CRUSH_ITEM_NONE, PlacementEngine
from ..errors import DecodeError
from ..sim import Environment
from .monitor import Monitor
from .ops import OpKind, OsdOp
from .osd import OsdDaemon, shard_object_name
from .qos import CLASS_SCRUB, QosTag
from .osdmap import Pool, PoolType


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class Inconsistency:
    """One detected divergence."""

    object_name: str
    kind: str  # "size-mismatch", "checksum-mismatch", "missing-copy"
    details: str = ""


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    pool_name: str
    deep: bool
    objects_examined: int = 0
    inconsistencies: list[Inconsistency] = field(default_factory=list)
    repaired: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing diverged."""
        return not self.inconsistencies


class Scrubber:
    """Runs scrub passes over a pool using the live daemons."""

    def __init__(self, env: Environment, monitor: Monitor):
        self.env = env
        self.monitor = monitor

    def _live_daemons(self) -> dict[int, OsdDaemon]:
        osdmap = self.monitor.osdmap
        return {o: self.monitor.daemons[o] for o in osdmap.up_osds()}

    def _object_names(self, pool: Pool, live: dict[int, OsdDaemon]) -> list[str]:
        names: set[str] = set()
        for daemon in live.values():
            for key in daemon.store.object_names():
                base = key.split(".s")[0] if pool.pool_type == PoolType.ERASURE else key
                names.add(base)
        return sorted(names)

    def scrub(self, pool: Pool, deep: bool = False, repair: bool = False) -> Generator:
        """Process: verify every object in ``pool``; returns a report.

        Deep scrubs read full object content through the device model
        (charging real media time); light scrubs compare sizes only.
        ``repair=True`` heals divergent copies from the majority (or
        reconstructs EC shards through the codec).
        """
        report = ScrubReport(pool.name, deep)
        live = self._live_daemons()
        helper = next(iter(live.values()))
        placement = PlacementEngine(self.monitor.osdmap.crush)
        for name in self._object_names(pool, live):
            report.objects_examined += 1
            acting = placement.object_to_osds(
                pool.pool_id, name, pool.pg_num, pool.rule, pool.size
            )[1]
            if pool.pool_type == PoolType.REPLICATED:
                self._check_replication(pool, name, acting, live, report)
                yield from self._scrub_replicated(pool, name, live, deep, repair, report, helper)
            else:
                self._check_ec_placement(pool, name, acting, live, report)
                yield from self._scrub_ec(pool, name, live, deep, repair, report, helper)
        return report

    def _check_ec_placement(self, pool, name, acting, live, report) -> None:
        """Each live acting rank must hold its shard."""
        absent = [
            (rank, osd)
            for rank, osd in enumerate(acting)
            if osd != CRUSH_ITEM_NONE
            and osd in live
            and shard_object_name(name, rank) not in live[osd].store
        ]
        if absent:
            report.inconsistencies.append(
                Inconsistency(
                    name, "missing-copy", f"shards absent on acting (rank, osd) {absent}"
                )
            )

    def _check_replication(self, pool, name, acting, live, report) -> None:
        """Acting-aware redundancy check: every live acting member must
        hold its copy (a hole in the acting set itself is also reported
        — the pool is running below its replica target)."""
        expected = [o for o in acting if o != CRUSH_ITEM_NONE and o in live]
        absent = [o for o in expected if name not in live[o].store]
        short = pool.size - len(expected)
        if absent or short > 0:
            details = []
            if absent:
                details.append(f"absent on acting osds {absent}")
            if short > 0:
                details.append(f"{short} acting slots unfillable")
            report.inconsistencies.append(
                Inconsistency(name, "missing-copy", "; ".join(details))
            )

    # -- replicated -----------------------------------------------------------

    def _scrub_replicated(self, pool, name, live, deep, repair, report, helper) -> Generator:
        holders = {o: d for o, d in live.items() if name in d.store}
        if not holders:
            return
        copies: dict[int, bytes] = {}
        sizes: dict[int, int] = {}
        for osd_id, daemon in holders.items():
            size = daemon.store.object_size(name)
            sizes[osd_id] = size
            if deep:
                yield from daemon.device.read(name, 0, max(1, size))
                copies[osd_id] = daemon.store.read(name, 0, size)
        if len(set(sizes.values())) > 1:
            report.inconsistencies.append(
                Inconsistency(name, "size-mismatch", f"sizes {sizes}")
            )
        if deep and len({_digest(c) for c in copies.values()}) > 1:
            report.inconsistencies.append(
                Inconsistency(name, "checksum-mismatch", f"across osds {sorted(copies)}")
            )
            if repair:
                yield from self._repair_replicated(name, copies, holders, helper)
                report.repaired += 1

    def _repair_replicated(self, name, copies, holders, helper) -> Generator:
        # BlueStore-style: each copy self-verifies against its stored
        # checksum, so the rotted copy is identified even in 2-replica
        # pools where a majority vote would tie.  Majority vote is the
        # fallback when every copy self-verifies (e.g. a stale replica).
        self_ok = {o for o, d in holders.items() if d.store.verify(name)}
        if self_ok and len(self_ok) < len(copies):
            good = copies[next(iter(self_ok))]
            bad = [o for o in copies if o not in self_ok]
        else:
            tally: dict[str, list[int]] = {}
            for osd_id, data in copies.items():
                tally.setdefault(_digest(data), []).append(osd_id)
            good_digest, good_osds = max(tally.items(), key=lambda kv: len(kv[1]))
            if len(good_osds) == len(copies):
                return
            good = copies[good_osds[0]]
            bad = [o for o, data in copies.items() if _digest(data) != good_digest]
        for osd_id in bad:
            op = OsdOp(
                OpKind.WRITE_DIRECT, 0, name, 0, len(good), data=good,
                qos=QosTag(svc=CLASS_SCRUB),
            )
            yield from helper.call(f"osd.{osd_id}", op)

    # -- erasure coded -----------------------------------------------------------

    def _scrub_ec(self, pool, name, live, deep, repair, report, helper) -> Generator:
        codec = helper.codec_for(pool.pool_id)
        shards: dict[int, bytes] = {}
        shard_osd: dict[int, int] = {}
        for rank in range(pool.size):
            key = shard_object_name(name, rank)
            for osd_id, daemon in live.items():
                if key in daemon.store:
                    size = daemon.store.object_size(key)
                    if deep:
                        yield from daemon.device.read(key, 0, max(1, size))
                    shards[rank] = daemon.store.read(key, 0, size)
                    shard_osd[rank] = osd_id
                    break
        if len(shards) < pool.k:
            report.inconsistencies.append(
                Inconsistency(name, "missing-copy", f"only shards {sorted(shards)} present")
            )
            return
        if not deep:
            return
        # First line of defence: BlueStore-style per-shard checksums.
        self_bad = [
            rank
            for rank, osd_id in shard_osd.items()
            if not live[osd_id].store.verify(shard_object_name(name, rank))
        ]
        # Second: algebraic cross-check — re-derive each shard from the
        # others; a corrupt shard disagrees with the reconstruction.
        slots = [shards.get(r) for r in range(pool.size)]
        bad: list[int] = list(self_bad)
        for rank, data in shards.items():
            if rank in bad:
                continue
            others = list(slots)
            others[rank] = None
            if sum(1 for s in others if s is not None) < pool.k:
                continue
            try:
                expected = codec.reconstruct_shard(others, rank)
            except DecodeError:
                continue
            if expected != data:
                bad.append(rank)
        # A single corrupt shard makes every cross-check disagree; the
        # self-checksum names the culprit directly, else exclusion search.
        if bad:
            culprit = self_bad[0] if self_bad else self._find_culprit(codec, pool, slots, bad)
            report.inconsistencies.append(
                Inconsistency(name, "checksum-mismatch", f"ec shard {culprit} corrupt")
            )
            if repair and culprit is not None:
                others = list(slots)
                others[culprit] = None
                fixed = codec.reconstruct_shard(others, culprit)
                op = OsdOp(
                    OpKind.SHARD_WRITE, pool.pool_id, name, 0, len(fixed),
                    data=fixed, shard=culprit, qos=QosTag(svc=CLASS_SCRUB),
                )
                yield from helper.call(f"osd.{shard_osd[culprit]}", op)
                report.repaired += 1

    @staticmethod
    def _find_culprit(codec, pool, slots, suspects) -> Optional[int]:
        for rank in suspects:
            others = list(slots)
            others[rank] = None
            if sum(1 for s in others if s is not None) < pool.k:
                continue
            rebuilt = codec.reconstruct_shard(others, rank)
            # Excluding the true culprit, the rest are self-consistent:
            # every other shard re-derives correctly.
            trial = list(others)
            trial[rank] = rebuilt
            consistent = True
            for other_rank, data in enumerate(trial):
                if data is None or other_rank == rank:
                    continue
                probe = list(trial)
                probe[other_rank] = None
                if sum(1 for s in probe if s is not None) < pool.k:
                    continue
                if codec.reconstruct_shard(probe, other_rank) != data:
                    consistent = False
                    break
            if consistent:
                return rank
        return suspects[0] if suspects else None
