"""Multi-tenant QoS: a dmClock-style op scheduler per OSD worker pool.

DeLiBA-K gives every tenant its own QDMA virtual function and io_uring
instances, but those per-tenant streams still converge on shared OSDs.
This module arbitrates them the way Ceph's mClock scheduler does, using
the dmClock algorithm (Gulati et al.): every flow carries a
*reservation* (minimum IOPS, always honored first), a *weight*
(proportional share of the surplus), and a *limit* (IOPS ceiling, the
only non-work-conserving knob).

Three layers:

* :class:`MClockQueue` — the tag algebra, free of any simulation
  dependency.  It is driven by explicit clock values, which lets the
  differential test harness (``tests/qos_harness.py``) and Hypothesis
  properties replay arrival traces through the *production* scheduler in
  pure virtual time.
* :class:`OsdQosScheduler` — the per-OSD admission gate sitting in front
  of ``OsdDaemon.cpu``: ops wait here until dispatched, then take a
  worker slot immediately.  Limits are enforced with wakeup timers;
  without limits the gate is work-conserving (a free worker never idles
  while any op is queued).
* :class:`TenantTracker` + the ``rho``/``delta`` fields of
  :class:`QosTag` — dmClock's distributed tags.  Each requester counts
  its flows' completions cluster-wide and piggybacks, per destination,
  how many completed since the last op it sent there; each OSD advances
  its local tags by that amount, so per-tenant reservations and shares
  hold across replicated/EC fan-out to many OSDs without any scheduler
  talking to another.

Tag algebra (integer nanoseconds; ``1/r`` means ``1e9 / iops``)::

    R = max(R_prev + rho  * 1/r, now)     # reservation
    P = max(P_prev + delta * 1/w, now)    # proportional share
    L = max(L_prev + delta * 1/l, now)    # limit

Dispatch prefers the smallest eligible R tag (``R <= now``); otherwise
the smallest P tag among heads whose L tag is eligible.  A
priority-phase dispatch shifts the flow's outstanding R tags back by
``1/r`` (implemented O(1) via a per-flow accumulator), so work done in
the weight phase counts toward the reservation.

Everything here is opt-in: ``CephCluster.enable_qos()`` wires it up;
without that call no scheduler exists, ops carry at most an inert tag,
and fault-free golden traces are byte-identical to the seed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..errors import StorageError
from ..sim import NULL_METRICS, Environment, Event, Resource

NS_PER_SEC = 1_000_000_000

#: Dispatch phase carried back to the requester on each reply (dmClock's
#: feedback bit): 0 = not scheduled (QoS off / synthetic reply).
PHASE_NONE = 0
PHASE_RESERVATION = 1
PHASE_PRIORITY = 2

#: Built-in service classes.  ``client`` flows are keyed per tenant;
#: background classes are one flow each, throttled by the same tags.
CLASS_CLIENT = "client"
CLASS_RECOVERY = "recovery"
CLASS_SCRUB = "scrub"
CLASS_SYSTEM = "system"

#: Spacing ceiling (~31 years).  Rates so low their tag spacing exceeds
#: this clamp here instead of overflowing float->int conversion; the
#: flow is then throttled to one op per _MAX_SPACING_NS, i.e. never.
_MAX_SPACING_NS = 10**18


def _spacing_ns(rate: float, round_up: bool = False) -> int:
    """Tag spacing (ns) for a rate, clamped to [1, _MAX_SPACING_NS].

    ``round_up`` rounds fractional spacings toward *more* spacing, for
    ceilings: the integer spacing must never yield an effective rate
    above the nominal one.
    """
    spacing = NS_PER_SEC / rate
    if spacing >= _MAX_SPACING_NS:
        return _MAX_SPACING_NS
    return max(1, math.ceil(spacing) if round_up else round(spacing))


@dataclass(frozen=True)
class QosSpec:
    """One flow's (reservation, weight, limit) triple.

    ``reservation_iops`` is a guaranteed floor (0 = none), ``weight`` a
    dimensionless share of the surplus, ``limit_iops`` a ceiling (None =
    unlimited).  dmClock requires ``reservation <= limit``.
    """

    reservation_iops: float = 0.0
    weight: float = 1.0
    limit_iops: Optional[float] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise StorageError(f"qos weight must be > 0, got {self.weight}")
        if self.reservation_iops < 0:
            raise StorageError(f"qos reservation must be >= 0, got {self.reservation_iops}")
        if self.limit_iops is not None and self.limit_iops <= 0:
            raise StorageError(f"qos limit must be > 0, got {self.limit_iops}")
        if self.limit_iops is not None and self.reservation_iops > self.limit_iops:
            raise StorageError(
                f"qos reservation {self.reservation_iops} exceeds limit {self.limit_iops}"
            )

    @property
    def r_spacing(self) -> Optional[int]:
        """Reservation tag spacing in ns (None = no reservation)."""
        if self.reservation_iops <= 0:
            return None
        return _spacing_ns(self.reservation_iops)

    @property
    def p_spacing(self) -> int:
        """Weight tag spacing in ns (only ratios between flows matter)."""
        return _spacing_ns(self.weight)

    @property
    def l_spacing(self) -> Optional[int]:
        """Limit tag spacing in ns (None = unlimited)."""
        if self.limit_iops is None:
            return None
        return _spacing_ns(self.limit_iops, round_up=True)


@dataclass
class QosTag:
    """QoS identity an op carries to the serving OSD.

    Inert data until a scheduler is enabled; ``rho``/``delta`` are the
    dmClock distributed tags, re-stamped by a :class:`TenantTracker` on
    every send (so a retried op is re-stamped for its new destination).
    """

    tenant: str = ""
    svc: str = CLASS_CLIENT
    rho: int = 1
    delta: int = 1

    def flow(self) -> tuple[str, str]:
        """Scheduler flow key: per-tenant for client ops, per-class else."""
        return (self.svc, self.tenant if self.svc == CLASS_CLIENT else "")

    def derive(self) -> "QosTag":
        """Fresh tag with the same identity for a sub-op or fan-out leg
        (each op needs its own, since rho/delta are stamped per send)."""
        return QosTag(self.tenant, self.svc)


@dataclass
class QosConfig:
    """Cluster-wide QoS policy: per-tenant specs plus service classes."""

    #: tenant id -> spec; tenants not listed get ``default_client``.
    tenants: dict[str, QosSpec] = field(default_factory=dict)
    default_client: QosSpec = field(default_factory=QosSpec)
    #: Background recovery traffic: no reservation, a fraction of one
    #: client's weight — it yields under client load but never starves.
    recovery: QosSpec = field(default_factory=lambda: QosSpec(weight=0.25))
    scrub: QosSpec = field(default_factory=lambda: QosSpec(weight=0.1))
    #: Monitor heartbeats etc: a small reservation keeps liveness probes
    #: timely even under saturation.
    system: QosSpec = field(default_factory=lambda: QosSpec(reservation_iops=1000.0))

    def spec_for(self, flow: tuple[str, str]) -> QosSpec:
        """Resolve a flow key to its spec."""
        svc, tenant = flow
        if svc == CLASS_CLIENT:
            return self.tenants.get(tenant, self.default_client)
        spec = {
            CLASS_RECOVERY: self.recovery,
            CLASS_SCRUB: self.scrub,
            CLASS_SYSTEM: self.system,
        }.get(svc)
        return spec if spec is not None else self.default_client


class _Flow:
    """Per-flow scheduler state (tags in raw space; effective R = raw - shift)."""

    __slots__ = ("key", "spec", "items", "last_r", "last_p", "last_l", "r_shift")

    def __init__(self, key: tuple[str, str], spec: QosSpec):
        self.key = key
        self.spec = spec
        #: queued items: (r_raw | None, p_tag, l_tag, seq, item)
        self.items: deque = deque()
        self.last_r: Optional[int] = None  # raw
        self.last_p: Optional[int] = None
        self.last_l: Optional[int] = None
        #: Priority-phase dispatches shift outstanding R tags back by
        #: 1/r each — tracked O(1) here instead of rewriting the deque.
        self.r_shift = 0


class MClockQueue:
    """The dmClock tag queue, driven by explicit ``now`` values.

    Deterministic: ties break on a global arrival sequence number, and
    flow iteration follows insertion order.  No simulation types appear
    here, so tests can replay arbitrary traces in pure virtual time.
    """

    def __init__(self, config: Optional[QosConfig] = None):
        self.config = config or QosConfig()
        self._flows: dict[tuple[str, str], _Flow] = {}
        self._seq = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def flow(self, key: tuple[str, str]) -> _Flow:
        """Get-or-create the state of one flow."""
        f = self._flows.get(key)
        if f is None:
            f = _Flow(key, self.config.spec_for(key))
            self._flows[key] = f
        return f

    def depth(self, key: tuple[str, str]) -> int:
        """Queued items of one flow."""
        f = self._flows.get(key)
        return len(f.items) if f is not None else 0

    def push(self, item, key: tuple[str, str], now: int, rho: int = 1, delta: int = 1) -> None:
        """Enqueue ``item`` on flow ``key``, computing its three tags.

        ``rho``/``delta`` advance the reservation and weight/limit tags
        by that many spacings (dmClock: completions elsewhere in the
        cluster count against this server's local tags too).
        """
        f = self.flow(key)
        spec = f.spec
        r_raw: Optional[int] = None
        if spec.r_spacing is not None:
            if f.last_r is None:
                eff = now
            else:
                eff = max((f.last_r - f.r_shift) + rho * spec.r_spacing, now)
            r_raw = eff + f.r_shift
            f.last_r = r_raw
        if f.last_p is None:
            p = now
        else:
            p = max(f.last_p + delta * spec.p_spacing, now)
        f.last_p = p
        if spec.l_spacing is None:
            lim = now
        elif f.last_l is None:
            lim = now
        else:
            lim = max(f.last_l + delta * spec.l_spacing, now)
        f.last_l = lim
        f.items.append((r_raw, p, lim, self._seq, item))
        self._seq += 1
        self._len += 1

    def pop(self, now: int):
        """Dispatch one item, or None if nothing is eligible at ``now``.

        Returns ``(item, flow_key, phase, lag_ns)`` where ``lag_ns`` is
        how far behind its reservation deadline a reservation-phase
        dispatch ran (0 in the priority phase).
        """
        # Reservation phase: smallest eligible effective R tag wins.
        best = None
        best_flow = None
        for f in self._flows.values():
            if not f.items:
                continue
            r_raw = f.items[0][0]
            if r_raw is None:
                continue
            eff = r_raw - f.r_shift
            if eff <= now:
                cand = (eff, f.items[0][3])
                if best is None or cand < best:
                    best, best_flow = cand, f
        if best_flow is not None:
            r_raw, _p, _lim, _seq, item = best_flow.items.popleft()
            self._len -= 1
            return item, best_flow.key, PHASE_RESERVATION, now - (r_raw - best_flow.r_shift)
        # Priority phase: smallest P tag among heads under their limit.
        best = None
        best_flow = None
        for f in self._flows.values():
            if not f.items:
                continue
            if f.items[0][2] > now:
                continue  # limit not yet eligible
            cand = (f.items[0][1], f.items[0][3])
            if best is None or cand < best:
                best, best_flow = cand, f
        if best_flow is None:
            return None
        _r, _p, _lim, _seq, item = best_flow.items.popleft()
        self._len -= 1
        if best_flow.spec.r_spacing is not None:
            # Weight-phase work counts toward the reservation: slide the
            # flow's outstanding R tags back one spacing.
            best_flow.r_shift += best_flow.spec.r_spacing
        return item, best_flow.key, PHASE_PRIORITY, 0

    def discard(self, key: tuple[str, str], item) -> bool:
        """Withdraw a queued item (its waiter was killed mid-wait).

        The tag credit the item consumed at push time is not refunded —
        a crash path, not a scheduling decision."""
        f = self._flows.get(key)
        if f is None:
            return False
        for entry in f.items:
            if entry[4] is item:
                f.items.remove(entry)
                self._len -= 1
                return True
        return False

    def next_eligible(self, now: int) -> Optional[int]:
        """Earliest time any queued head becomes dispatchable.

        None when empty; a value ``<= now`` means something is eligible
        already.  A head is dispatchable at ``min(effective R, L)`` —
        the P tag orders but never delays."""
        t: Optional[int] = None
        for f in self._flows.values():
            if not f.items:
                continue
            r_raw, _p, lim, _seq, _item = f.items[0]
            cand = lim
            if r_raw is not None:
                cand = min(cand, r_raw - f.r_shift)
            if t is None or cand < t:
                t = cand
        return t


def flow_of(op) -> tuple[str, str]:
    """Flow key of an op (untagged ops share the default client flow)."""
    tag = getattr(op, "qos", None)
    if tag is None:
        return (CLASS_CLIENT, "")
    return tag.flow()


class _AdmitTicket(Event):
    """The event an op waits on inside the admission gate.

    Carries the interrupt-cancellation hook the sim kernel looks for: a
    handler killed mid-wait (OSD crash) withdraws its queue entry, so a
    dead op is never dispatched against the inflight budget."""

    __slots__ = ("scheduler", "flow", "entry")

    def __init__(self, scheduler: "OsdQosScheduler", flow: tuple[str, str]):
        super().__init__(scheduler.env)
        self.scheduler = scheduler
        self.flow = flow
        self.entry = None

    def _cancel_on_interrupt(self) -> None:
        if not self.triggered:
            self.scheduler.queue.discard(self.flow, self.entry)


class OsdQosScheduler:
    """Admission gate in front of one OSD's worker pool.

    ``OsdDaemon.on_request`` yields from :meth:`admit` before claiming a
    worker slot; at most ``capacity`` admitted ops are outstanding, so a
    dispatched op takes its slot immediately — the scheduler, not the
    FIFO resource queue, decides service order.  :meth:`release` returns
    a slot and pumps the queue.  When every queued head is blocked by
    its limit tag, a wakeup timer re-pumps at the earliest eligibility
    (the only time QoS is deliberately non-work-conserving).

    Replica/shard sub-ops arriving from peer OSDs do NOT pass the gate:
    their parent op was already arbitrated (and its tenant charged) at
    the primary's gate, and a primary holds its worker slot while its
    sub-ops round-trip — admitting sub-ops against the same slots would
    both double-charge the tenant and allow a distributed deadlock once
    every pool fills with primaries waiting on each other's replicas.
    They ride :attr:`sub_lane` instead, a separate worker pool of the
    same width whose occupants never wait on another OSD.
    """

    def __init__(
        self,
        env: Environment,
        osd_id: int,
        capacity: int,
        config: Optional[QosConfig] = None,
        metrics=None,
    ):
        self.env = env
        self.osd_id = osd_id
        self.capacity = capacity
        self.queue = MClockQueue(config)
        self.config = self.queue.config
        self.inflight = 0
        #: Express lane for peer sub-ops (see class docstring).
        self.sub_lane = Resource(env, capacity=capacity, name=f"qos.{osd_id}.sublane")
        self._wake_at: Optional[int] = None
        metrics = metrics or NULL_METRICS
        self._metrics = metrics
        self._m_res = metrics.counter("qos.phase.reservation")
        self._m_prio = metrics.counter("qos.phase.priority")
        self._m_limit_waits = metrics.counter("qos.limit_waits")
        self._m_depth = metrics.gauge(f"qos.osd.{osd_id}.depth")
        #: flow -> (ops, queue_wait dist, deadline_lag dist, res_ops)
        self._flow_m: dict = {}

    def _flow_metrics(self, flow: tuple[str, str]):
        m = self._flow_m.get(flow)
        if m is None:
            svc, tenant = flow
            label = f"tenant.{tenant or 'default'}" if svc == CLASS_CLIENT else f"class.{svc}"
            m = (
                self._metrics.counter(f"qos.{label}.ops"),
                self._metrics.distribution(f"qos.{label}.queue_wait_ns"),
                self._metrics.distribution(f"qos.{label}.deadline_lag_ns"),
                self._metrics.counter(f"qos.{label}.res_ops"),
            )
            self._flow_m[flow] = m
        return m

    def admit(self, op) -> Generator:
        """Process: hold ``op`` until the scheduler dispatches it.

        Returns the dispatch phase (stamped on the reply so requesters'
        trackers can maintain their distributed tags)."""
        tag = getattr(op, "qos", None)
        flow = tag.flow() if tag is not None else (CLASS_CLIENT, "")
        rho = max(1, tag.rho) if tag is not None else 1
        delta = max(1, tag.delta) if tag is not None else 1
        ev = _AdmitTicket(self, flow)
        ev.entry = (ev, self.env.now, flow)
        self.queue.push(ev.entry, flow, self.env.now, rho, delta)
        self._m_depth.set(len(self.queue))
        self._pump()
        phase = yield ev
        return phase

    def release(self) -> None:
        """One admitted op finished with its worker slot."""
        self.inflight -= 1
        self._pump()

    def _pump(self) -> None:
        now = self.env.now
        while self.inflight < self.capacity:
            popped = self.queue.pop(now)
            if popped is None:
                break
            (ev, t_enq, flow), _key, phase, lag = popped
            self.inflight += 1
            ops, wait, lag_d, res = self._flow_metrics(flow)
            ops.add()
            wait.record(now - t_enq)
            if phase == PHASE_RESERVATION:
                self._m_res.add()
                res.add()
                lag_d.record(lag)
            else:
                self._m_prio.add()
            ev.succeed(phase)
        self._m_depth.set(len(self.queue))
        if self.inflight < self.capacity and len(self.queue):
            t = self.queue.next_eligible(now)
            if t is not None and t > now:
                self._m_limit_waits.add()
                self._schedule_wake(t)

    def _schedule_wake(self, t: int) -> None:
        if self._wake_at is not None and self._wake_at <= t:
            return  # an earlier (or equal) timer is already in flight
        self._wake_at = t
        self.env.process(self._wake(t), name=f"qos.{self.osd_id}.wake")

    def _wake(self, t: int) -> Generator:
        yield self.env.timeout(t - self.env.now)
        if self._wake_at == t:
            self._wake_at = None
        self._pump()


class TenantTracker:
    """Client-side dmClock bookkeeping for one messenger entity.

    Tracks, per flow, how many of its ops completed cluster-wide (and
    how many in the reservation phase), plus per-destination snapshots
    at the last send.  :meth:`stamp` writes ``rho``/``delta`` into an
    op's tag just before it goes on the wire; :meth:`account` consumes
    the phase feedback piggybacked on replies.  Installed on a
    :class:`~repro.osd.fabric.Messenger` as ``qos_tracker``, it hooks
    every request/reply without adding a single simulation event.
    """

    def __init__(self):
        #: flow -> (total completions, reservation-phase completions)
        self._totals: dict[tuple[str, str], tuple[int, int]] = {}
        #: (flow, dst) -> totals snapshot at last send to dst
        self._sent: dict[tuple[tuple[str, str], str], tuple[int, int]] = {}

    def stamp(self, op, dst: str) -> None:
        """Write rho/delta for a send of ``op`` to ``dst``."""
        tag = op.qos
        flow = tag.flow()
        total, res = self._totals.get(flow, (0, 0))
        sent_total, sent_res = self._sent.get((flow, dst), (0, 0))
        tag.delta = max(1, total - sent_total)
        tag.rho = max(1, res - sent_res)
        self._sent[(flow, dst)] = (total, res)

    def account(self, tag: QosTag, phase: int) -> None:
        """Record one completion and the phase it was served in."""
        if phase == PHASE_NONE:
            return
        flow = tag.flow()
        total, res = self._totals.get(flow, (0, 0))
        self._totals[flow] = (total + 1, res + (1 if phase == PHASE_RESERVATION else 0))

    def completions(self, flow: tuple[str, str]) -> tuple[int, int]:
        """(total, reservation-phase) completions seen for ``flow``."""
        return self._totals.get(flow, (0, 0))


class QosManager:
    """Cluster-wide QoS wiring: one scheduler per OSD, one tracker per
    messenger entity (clients, primaries issuing sub-ops, recovery
    agents).  Created by :meth:`CephCluster.enable_qos`."""

    def __init__(self, env: Environment, cluster, config: Optional[QosConfig] = None,
                 metrics=None):
        self.env = env
        self.cluster = cluster
        self.config = config or QosConfig()
        self.metrics = metrics
        for daemon in cluster.daemons.values():
            self.attach_osd(daemon)
        for client in cluster._clients.values():
            self.attach_messenger(client)
        if cluster.recovery is not None:
            for agent in cluster.recovery._agents.values():
                self.attach_messenger(agent.messenger)
        if cluster.monitor.messenger is not None:
            self.attach_messenger(cluster.monitor.messenger)

    def attach_osd(self, daemon) -> None:
        """Install the admission gate on one OSD (idempotent)."""
        if daemon.qos is None:
            daemon.qos = OsdQosScheduler(
                self.env, daemon.osd_id, daemon.config.op_threads, self.config,
                metrics=self.metrics,
            )
        # Primaries forward sub-ops: their sends carry rho/delta too.
        self.attach_messenger(daemon)

    def attach_messenger(self, messenger) -> None:
        """Install a distributed-tag tracker on one entity (idempotent)."""
        if messenger.qos_tracker is None:
            messenger.qos_tracker = TenantTracker()
