"""In-memory object store backing one OSD (a miniature BlueStore).

Objects are sparse byte buffers addressed by name; reads beyond written
extents return zeros (like a filesystem hole).  Data is stored for real
so integrity round-trips (including EC reconstruction) are verifiable in
tests.

Like BlueStore, every write refreshes a stored whole-object checksum, so
scrub can tell *which* copy rotted even in 2-replica pools where a
majority vote ties.  Fault-injection corrupts via :meth:`corrupt`, which
bypasses the checksum update (that is what silent media corruption is).
"""

from __future__ import annotations

import hashlib

from ..errors import StorageError


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ObjectStore:
    """name -> sparse bytearray, with usage accounting and checksums."""

    def __init__(self, capacity_bytes: int | None = None):
        self._objects: dict[str, bytearray] = {}
        self._checksums: dict[str, str] = {}
        self.capacity_bytes = capacity_bytes

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def used_bytes(self) -> int:
        """Total bytes across all objects (allocated extents)."""
        return sum(len(buf) for buf in self._objects.values())

    def object_names(self) -> list[str]:
        """Sorted object names (for scrub/recovery iteration)."""
        return sorted(self._objects)

    def object_size(self, name: str) -> int:
        """Current size of an object (0 if absent)."""
        buf = self._objects.get(name)
        return len(buf) if buf is not None else 0

    def write(self, name: str, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the object as needed."""
        if offset < 0:
            raise StorageError(f"negative write offset {offset}")
        if self.capacity_bytes is not None:
            projected = self.used_bytes + max(0, offset + len(data) - self.object_size(name))
            if projected > self.capacity_bytes:
                raise StorageError(
                    f"device full: {projected} > capacity {self.capacity_bytes}"
                )
        buf = self._objects.setdefault(name, bytearray())
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data
        self._checksums[name] = _digest(bytes(buf))

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; holes and EOF read as zeros."""
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read extent ({offset}, {length})")
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        chunk = bytes(buf[offset : offset + length])
        if len(chunk) < length:
            chunk += b"\x00" * (length - len(chunk))
        return chunk

    def delete(self, name: str) -> None:
        """Remove an object."""
        if name not in self._objects:
            raise StorageError(f"no such object {name!r}")
        del self._objects[name]
        self._checksums.pop(name, None)

    # -- integrity -------------------------------------------------------------

    def corrupt(self, name: str, offset: int, junk: bytes) -> None:
        """Fault injection: alter stored bytes WITHOUT updating the
        checksum — silent media corruption."""
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        end = offset + len(junk)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = junk

    def stored_checksum(self, name: str) -> str:
        """The checksum recorded at last legitimate write."""
        if name not in self._checksums:
            raise StorageError(f"no checksum for object {name!r}")
        return self._checksums[name]

    def verify(self, name: str) -> bool:
        """True when current content matches the stored checksum."""
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        return _digest(bytes(buf)) == self._checksums.get(name)
