"""In-memory object store backing one OSD (a miniature BlueStore).

Objects are sparse byte buffers addressed by name; reads beyond written
extents return zeros (like a filesystem hole).  Data is stored for real
so integrity round-trips (including EC reconstruction) are verifiable in
tests.

Like BlueStore, every write refreshes a stored whole-object checksum, so
scrub can tell *which* copy rotted even in 2-replica pools where a
majority vote ties.  The checksum is maintained lazily: a write marks
the object dirty and the digest is computed on first read of the
checksum (scrub/verify) — the write hot path never hashes.  A
legitimate-write digest is flushed before :meth:`corrupt` mutates bytes,
so silent corruption is still detectable: the stored checksum always
reflects the last legitimate write.
"""

from __future__ import annotations

import hashlib

from ..errors import StorageError


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ObjectStore:
    """name -> sparse bytearray, with usage accounting and checksums."""

    def __init__(self, capacity_bytes: int | None = None):
        self._objects: dict[str, bytearray] = {}
        self._checksums: dict[str, str] = {}
        #: Objects whose checksum is stale (recomputed on demand).
        self._dirty: set[str] = set()
        self._used = 0
        self.capacity_bytes = capacity_bytes

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def used_bytes(self) -> int:
        """Total bytes across all objects (allocated extents)."""
        return self._used

    def object_names(self) -> list[str]:
        """Sorted object names (for scrub/recovery iteration)."""
        return sorted(self._objects)

    def object_size(self, name: str) -> int:
        """Current size of an object (0 if absent)."""
        buf = self._objects.get(name)
        return len(buf) if buf is not None else 0

    def write(self, name: str, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the object as needed."""
        if offset < 0:
            raise StorageError(f"negative write offset {offset}")
        buf = self._objects.get(name)
        old_len = len(buf) if buf is not None else 0
        end = offset + len(data)
        if self.capacity_bytes is not None:
            projected = self._used + max(0, end - old_len)
            if projected > self.capacity_bytes:
                raise StorageError(
                    f"device full: {projected} > capacity {self.capacity_bytes}"
                )
        if buf is None:
            buf = bytearray()
            self._objects[name] = buf
        if old_len < end:
            buf.extend(b"\x00" * (end - old_len))
            self._used += end - old_len
        buf[offset:end] = data
        self._dirty.add(name)

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; holes and EOF read as zeros."""
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read extent ({offset}, {length})")
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        chunk = bytes(buf[offset : offset + length])
        if len(chunk) < length:
            chunk += b"\x00" * (length - len(chunk))
        return chunk

    def clear(self) -> None:
        """Drop every object and checksum (a revived OSD starts empty:
        its pre-failure content is stale and must be backfilled)."""
        self._objects.clear()
        self._checksums.clear()
        self._dirty.clear()
        self._used = 0

    def delete(self, name: str) -> None:
        """Remove an object."""
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        self._used -= len(buf)
        del self._objects[name]
        self._checksums.pop(name, None)
        self._dirty.discard(name)

    # -- integrity -------------------------------------------------------------

    def _flush_checksum(self, name: str) -> None:
        """Materialize the pending legitimate-write checksum, if any."""
        if name in self._dirty:
            self._checksums[name] = _digest(bytes(self._objects[name]))
            self._dirty.discard(name)

    def corrupt(self, name: str, offset: int, junk: bytes) -> None:
        """Fault injection: alter stored bytes WITHOUT updating the
        checksum — silent media corruption."""
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        # The stored checksum must keep describing the last legitimate
        # write, so settle any lazily deferred digest first.
        self._flush_checksum(name)
        end = offset + len(junk)
        if len(buf) < end:
            self._used += end - len(buf)
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = junk

    def stored_checksum(self, name: str) -> str:
        """The checksum recorded at last legitimate write."""
        self._flush_checksum(name)
        if name not in self._checksums:
            raise StorageError(f"no checksum for object {name!r}")
        return self._checksums[name]

    def verify(self, name: str) -> bool:
        """True when current content matches the stored checksum."""
        buf = self._objects.get(name)
        if buf is None:
            raise StorageError(f"no such object {name!r}")
        self._flush_checksum(name)
        return _digest(bytes(buf)) == self._checksums.get(name)
