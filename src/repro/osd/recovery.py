"""Online self-healing: PG state machine, peering, and background recovery.

Where :meth:`Monitor.recover_pool` is a stop-the-world helper that reads
OSD stores directly (zero simulated time, zero fabric bytes), this
subsystem keeps the cluster healing itself **while clients keep issuing
IO**, the way Ceph does:

* Every OSDMap epoch bump re-derives each PG's acting set; a changed set
  sends the PG through ``peering -> backfilling -> recovered`` (or
  ``degraded`` / ``incomplete`` when full redundancy is impossible).
* Peering and every recovery byte move through the real
  :class:`~repro.osd.fabric.Messenger` as PG_LIST / PULL / PUSH ops, so
  recovery traffic contends with client IO for network links, OSD worker
  threads, and device time — the client-vs-recovery tradeoff is a
  measurable knob (:class:`RecoveryConfig`).
* Per-OSD **recovery agents** run as sim processes on the primary of
  each damaged PG; a throttle bounds in-flight ops and bytes/s, and
  ``client_priority`` routes recovery ops through the QoS scheduler's
  low-weight ``recovery`` service class (see :mod:`repro.osd.qos`).
* **Degraded-mode availability**: clients read/write through the
  surviving acting set the whole time.  A per-PG missing set gates
  client mutations of not-yet-backfilled objects (they block, briefly,
  rather than race), and version-guarded pushes guarantee a write that
  lands during recovery is never clobbered by a stale backfill push.

The manager adds **zero** simulation events until
``CephCluster.enable_recovery()`` is called, so fault-free golden traces
are untouched.

Known simplification (vs. Ceph's pg_log): authoritative state is the
max mutation version seen by peering.  Enable recovery *before*
injecting faults; enabling it mid-degradation while clients write to
freshly remapped members can elect a partial copy authoritative.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, Optional

from ..crush import CRUSH_ITEM_NONE, PlacementEngine
from ..crush.placement import object_to_pg
from ..net.stack import KERNEL_TCP
from ..sim import NULL_METRICS, Environment, Event, Resource
from .fabric import Messenger, traced_call
from .ops import OpKind, OsdOp
from .osd import base_object_name, shard_object_name
from .osdmap import PoolType
from .qos import CLASS_RECOVERY, QosTag


class PGState(Enum):
    """Lifecycle of one placement group."""

    ACTIVE = "active"  # clean: every acting member has every object
    PEERING = "peering"  # census in progress; mutations briefly blocked
    BACKFILLING = "backfilling"  # agents moving missing copies
    DEGRADED = "degraded"  # serving IO but redundancy not restorable yet
    RECOVERED = "recovered"  # clean again after a completed backfill
    INCOMPLETE = "incomplete"  # some EC object has < k shards anywhere


#: States with no recovery work in flight.
_STABLE_STATES = frozenset(
    {PGState.ACTIVE, PGState.DEGRADED, PGState.RECOVERED, PGState.INCOMPLETE}
)

_EMPTY: frozenset = frozenset()


@dataclass
class RecoveryConfig:
    """Throttle knobs for the background recovery agents."""

    #: Concurrent objects a single agent recovers at once.
    max_inflight_ops: int = 4
    #: Recovery bandwidth cap per agent (pull + push bytes); None = none.
    bytes_per_sec: Optional[int] = None
    #: Yield to client traffic: recovery ops ride the cluster's QoS
    #: ``recovery`` service class (low weight, no reservation) instead
    #: of competing head-to-head in OSD queues.  Enabling this turns on
    #: cluster QoS if it is not already on.
    client_priority: bool = False
    #: Deadline per recovery op; None = wait (dead peers still bounce).
    op_timeout_ns: Optional[int] = None


@dataclass
class PGInfo:
    """Recovery-relevant state of one PG."""

    pool_id: int
    pg_id: int
    state: PGState = PGState.ACTIVE
    acting: tuple[int, ...] = ()
    prev_acting: tuple[int, ...] = ()
    #: OSDs ever seen acting for / holding this PG (peering recipients).
    known_members: set[int] = field(default_factory=set)
    #: target osd -> store keys that OSD still needs backfilled.
    missing: dict[int, set[str]] = field(default_factory=dict)
    #: Store keys of unrecoverable EC objects (writes NOT gated: a full
    #: client rewrite is the only thing that can heal them).
    incomplete_keys: set[str] = field(default_factory=set)
    #: Job generation; a queued/running job older than this aborts.
    serial: int = 0
    #: Census has run at least once (first one scans every up OSD).
    scanned: bool = False
    #: Event recreated per wait; fired on any state/missing change.
    progress: Optional[Event] = None


@dataclass
class _Job:
    """One peer-and-recover pass handed to an agent."""

    info: PGInfo
    serial: int


class RecoveryManager:
    """PG state machine + per-OSD recovery agents over one cluster.

    Also acts as the **recovery ledger** the OSD daemons consult:
    :meth:`is_missing` (absent reads fail over instead of serving
    authoritative zeros) and :meth:`write_gate` (mutations of missing
    objects block until their backfill push lands).
    """

    def __init__(self, env: Environment, cluster, config: Optional[RecoveryConfig] = None,
                 metrics=None, tracer=None):
        self.env = env
        self.cluster = cluster
        self.osdmap = cluster.osdmap
        self.daemons = cluster.daemons
        self.config = config or RecoveryConfig()
        self.tracer = tracer
        self.placement = PlacementEngine(self.osdmap.crush)
        metrics = metrics or NULL_METRICS
        self._metrics = metrics
        self.pgs: dict[tuple[int, int], PGInfo] = {}
        self._agents: dict[int, _Agent] = {}
        self._inflight_jobs = 0
        self._quiesce: Optional[Event] = None
        self._m_bytes_pulled = metrics.counter("recovery.bytes_pulled")
        self._m_bytes_pushed = metrics.counter("recovery.bytes_pushed")
        self._m_ops = metrics.counter("recovery.ops")
        self._m_stale = metrics.counter("recovery.pushes_stale")
        self._m_objects = metrics.counter("recovery.objects_recovered")
        self._m_unrecoverable = metrics.counter("recovery.objects_unrecoverable")
        self._m_pgs_recovered = metrics.counter("recovery.pgs_recovered")
        self._m_trims = metrics.counter("recovery.trims")
        self._m_gate_waits = metrics.counter("recovery.write_gate_waits")
        self._m_agent_errors = metrics.counter("recovery.agent_errors")
        self._m_pg_time = metrics.distribution("recovery.pg_recovery_ns")
        self._state_gauges = {s: metrics.gauge(f"recovery.pg_state.{s.value}") for s in PGState}
        self.objects_unrecoverable = 0
        self.pgs_recovered = 0
        for daemon in self.daemons.values():
            daemon.recovery_ledger = self
        self._sync_pools()
        self._sync_agents()
        self.osdmap.watch(self._on_epoch)

    # -- ledger (consulted by OsdDaemon on the op path) -----------------------

    def _pg_of(self, pool_id: int, key: str) -> Optional[PGInfo]:
        pool = self.osdmap.pools.get(pool_id)
        if pool is None:
            return None
        pg = object_to_pg(base_object_name(key), pool.pg_num)
        return self.pgs.get((pool_id, pg))

    def is_missing(self, osd_id: int, pool_id: int, key: str) -> bool:
        """True when ``key``'s absence on ``osd_id`` means "not yet
        backfilled": readers must fail over, not synthesize zeros."""
        info = self._pg_of(pool_id, key)
        if info is None:
            return False
        if info.state is PGState.PEERING:
            # The census isn't in yet — absence can't be trusted.
            return True
        return key in info.missing.get(osd_id, _EMPTY)

    def write_gate(self, osd_id: int, pool_id: int, key: str) -> Optional[Event]:
        """Event a client mutation of ``key`` on ``osd_id`` must wait
        for, or None when clear to apply.  Fires on any PG progress; the
        caller loops until clear."""
        info = self._pg_of(pool_id, key)
        if info is None:
            return None
        blocked = info.state is PGState.PEERING or key in info.missing.get(osd_id, _EMPTY)
        if not blocked:
            return None
        self._m_gate_waits.add()
        return self._progress_event(info)

    def _progress_event(self, info: PGInfo) -> Event:
        if info.progress is None:
            info.progress = self.env.event()
        return info.progress

    def _notify(self, info: PGInfo) -> None:
        event, info.progress = info.progress, None
        if event is not None:
            event.succeed()

    # -- map watching ---------------------------------------------------------

    def _sync_pools(self) -> None:
        """Create PGInfo entries for any new pool (treated clean: pools
        are born empty, so their current acting set is authoritative)."""
        for pool in self.osdmap.pools.values():
            for pg in range(pool.pg_num):
                key = (pool.pool_id, pg)
                if key not in self.pgs:
                    acting = tuple(
                        self.placement.pg_to_osds(pool.pool_id, pg, pool.rule, pool.size)
                    )
                    info = PGInfo(pool.pool_id, pg, acting=acting)
                    self.pgs[key] = info
                    self._state_gauges[PGState.ACTIVE].add()

    def _sync_agents(self) -> None:
        for osd_id, daemon in self.daemons.items():
            daemon.recovery_ledger = self
            if osd_id not in self._agents:
                self._agents[osd_id] = _Agent(self, osd_id)

    def _on_epoch(self, epoch: int) -> None:
        """OSDMap watcher: diff every PG's acting set; changed PGs go to
        peering and a job is queued on the new primary's agent."""
        self.placement.invalidate()
        self._sync_pools()
        self._sync_agents()
        for (pool_id, pg), info in sorted(self.pgs.items()):
            pool = self.osdmap.pools[pool_id]
            acting = tuple(self.placement.pg_to_osds(pool_id, pg, pool.rule, pool.size))
            if acting != info.acting:
                self._schedule_peer(info, acting)

    def kick(self) -> None:
        """Force a peer-and-recover pass over every PG (used when
        recovery is enabled on a cluster that may already be damaged)."""
        self.placement.invalidate()
        for _, info in sorted(self.pgs.items()):
            pool = self.osdmap.pools[info.pool_id]
            acting = tuple(
                self.placement.pg_to_osds(info.pool_id, info.pg_id, pool.rule, pool.size)
            )
            self._schedule_peer(info, acting)

    def _is_up(self, osd_id: int) -> bool:
        state = self.osdmap.osds.get(osd_id)
        return state is not None and state.up

    def _schedule_peer(self, info: PGInfo, acting: tuple[int, ...]) -> None:
        info.prev_acting = info.acting
        info.acting = acting
        info.serial += 1
        self._set_state(info, PGState.PEERING)
        primary = next((o for o in acting if o != CRUSH_ITEM_NONE and self._is_up(o)), None)
        if primary is None:
            # Nobody to serve or repair this PG until the map changes.
            self._set_state(info, PGState.INCOMPLETE)
            return
        self._inflight_jobs += 1
        self._agents[primary].submit(_Job(info, info.serial))

    def _set_state(self, info: PGInfo, state: PGState) -> None:
        if state is info.state:
            return
        self._state_gauges[info.state].add(-1)
        self._state_gauges[state].add()
        info.state = state
        self._notify(info)

    # -- convergence ----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """True when no peering/backfill work is queued or running."""
        if self._inflight_jobs:
            return False
        return all(info.state in _STABLE_STATES for info in self.pgs.values())

    def wait_converged(self) -> Generator:
        """Process: block until the cluster has no recovery in flight."""
        while not self.converged:
            if self._quiesce is None:
                self._quiesce = self.env.event()
            yield self._quiesce

    def pg_states(self) -> dict[str, int]:
        """PG count per state name (metrics/reporting helper)."""
        counts = {s.value: 0 for s in PGState}
        for info in self.pgs.values():
            counts[info.state.value] += 1
        return counts

    def _job_done(self, info: PGInfo) -> None:
        self._inflight_jobs -= 1
        if self.converged:
            self._release_reserves()
            event, self._quiesce = self._quiesce, None
            if event is not None:
                event.succeed()

    def _release_reserves(self) -> None:
        """Backfill finished everywhere relevant: revived OSDs with no
        missing objects left return to authoritative-absence reads."""
        pending: set[int] = set()
        for info in self.pgs.values():
            for osd_id, keys in info.missing.items():
                if keys:
                    pending.add(osd_id)
        for osd_id, daemon in self.daemons.items():
            if daemon.backfill_reserve and osd_id not in pending and self._is_up(osd_id):
                daemon.backfill_reserve = False


class _Agent:
    """Per-OSD background recovery worker (its own fabric entity on the
    OSD's host, so every byte it moves is real fabric traffic)."""

    def __init__(self, manager: RecoveryManager, osd_id: int):
        self.manager = manager
        self.env = manager.env
        self.osd_id = osd_id
        self.daemon = manager.daemons[osd_id]
        host = manager.osdmap.host_of(osd_id)
        name = f"recovery.{osd_id}"
        manager.cluster.fabric.register(name, host, KERNEL_TCP)
        self.messenger = Messenger(self.env, manager.cluster.fabric, name)
        self.messenger.start()
        if manager.cluster.qos is not None:
            manager.cluster.qos.attach_messenger(self.messenger)
        self._queue: deque[_Job] = deque()
        self._wake: Event = self.env.event()
        self._window = Resource(
            self.env, capacity=manager.config.max_inflight_ops, name=f"{name}.window"
        )
        self._next_free_ns = 0
        self.last_error: Optional[Exception] = None
        self.env.process(self._run(), name=name)

    def submit(self, job: _Job) -> None:
        self._queue.append(job)
        if not self._wake.triggered:
            self._wake.succeed()

    def _run(self) -> Generator:
        while True:
            while not self._queue:
                self._wake = self.env.event()
                yield self._wake
            job = self._queue.popleft()
            try:
                yield from self._recover_pg(job)
            except Exception as exc:  # noqa: BLE001 - agent must survive one bad PG
                self.last_error = exc
                self.manager._m_agent_errors.add()

    # -- throttle -------------------------------------------------------------

    def _throttle(self, nbytes: int) -> Generator:
        cfg = self.manager.config
        if cfg.bytes_per_sec:
            now = self.env.now
            start = max(now, self._next_free_ns)
            self._next_free_ns = start + (nbytes * 1_000_000_000) // cfg.bytes_per_sec
            if start > now:
                yield self.env.timeout(start - now)

    def _call(self, osd_id: int, op: OsdOp, span) -> Generator:
        if self.messenger.qos_tracker is not None and op.qos is None:
            # Recovery traffic is shaped by the scheduler's ``recovery``
            # service class, not ad-hoc backoff against queue depth.
            op.qos = QosTag(svc=CLASS_RECOVERY)
        leg = span.child(f"osd.{osd_id}", "rpc", op=op.kind.value) if span is not None else None
        reply = yield from traced_call(
            self.messenger, f"osd.{osd_id}", op, self.manager.config.op_timeout_ns, leg
        )
        self.manager._m_ops.add()
        return reply

    # -- one PG ---------------------------------------------------------------

    def _recover_pg(self, job: _Job) -> Generator:
        mgr = self.manager
        info = job.info
        root = None
        if mgr.tracer is not None:
            root = mgr.tracer.start_root(
                f"recovery.pg.{info.pool_id}.{info.pg_id}", "recovery",
                pool=info.pool_id, pg=info.pg_id, primary=self.osd_id,
            )
        t0 = self.env.now
        try:
            recovered = yield from self._peer_and_recover(job, root)
            if recovered:
                mgr.pgs_recovered += 1
                mgr._m_pgs_recovered.add()
                mgr._m_pg_time.record(self.env.now - t0)
        finally:
            if root is not None:
                root.finish(state=info.state.value)
            mgr._job_done(info)

    def _superseded(self, job: _Job) -> bool:
        return job.info.serial != job.serial

    def _peer_and_recover(self, job: _Job, root) -> Generator:
        """Census the PG, backfill every missing copy, trim strays.
        Returns True when the PG ended clean after moving data."""
        mgr = self.manager
        info = job.info
        pool = mgr.osdmap.pools.get(info.pool_id)
        if pool is None or self._superseded(job):
            return False
        up = {o for o in mgr.osdmap.up_osds()}

        # --- peering: PG_LIST census over everyone who may hold data ---
        if info.scanned:
            recipients = sorted(
                up & (set(info.acting) | set(info.prev_acting) | info.known_members)
            )
        else:
            recipients = sorted(up)  # bootstrap: anyone may hold strays
        listings: dict[int, dict[str, tuple[int, int]]] = {}
        span = root.child("peering", "fanout") if root is not None else None
        for osd_id in recipients:
            if osd_id == CRUSH_ITEM_NONE or self._superseded(job):
                break
            op = OsdOp(
                OpKind.PG_LIST, info.pool_id, f"pg{info.pg_id}",
                pg=info.pg_id, epoch=mgr.osdmap.epoch,
            )
            reply = yield from self._call(osd_id, op, span)
            if reply.ok and reply.listing is not None:
                listings[osd_id] = reply.listing
                info.known_members.add(osd_id)
        if span is not None:
            span.finish(recipients=len(recipients))
        if self._superseded(job):
            return False
        info.scanned = True

        # --- authoritative census: max version wins per store key ---
        census: dict[str, tuple[int, int, list[int]]] = {}
        for osd_id in sorted(listings):
            for key, (ver, size) in listings[osd_id].items():
                cur = census.get(key)
                if cur is None or ver > cur[0]:
                    census[key] = (ver, size, [osd_id])
                elif ver == cur[0]:
                    cur[2].append(osd_id)

        replicated = pool.pool_type == PoolType.REPLICATED
        missing: dict[int, set[str]] = {}
        work: list[tuple] = []  # ("copy", key, ver, size, sources, targets)
        incomplete = 0
        info.incomplete_keys = set()
        if replicated:
            expected = [o for o in info.acting if o != CRUSH_ITEM_NONE and o in up]
            for key in sorted(census):
                ver, size, holders = census[key]
                targets = [o for o in expected if o not in holders]
                if not targets:
                    continue
                for o in targets:
                    missing.setdefault(o, set()).add(key)
                work.append(("copy", key, ver, size, sorted(holders), targets))
        else:
            objects: dict[str, dict[int, tuple[int, int, list[int]]]] = {}
            for key in census:
                base = base_object_name(key)
                if base == key:
                    continue  # not a shard key; nothing owns it
                rank = int(key.rsplit(".s", 1)[1])
                objects.setdefault(base, {})[rank] = census[key]
            for base in sorted(objects):
                ranks = objects[base]
                auth_ver = max(ver for ver, _, _ in ranks.values())
                at_auth = {
                    r: (size, holders)
                    for r, (ver, size, holders) in ranks.items()
                    if ver == auth_ver
                }
                need: list[tuple[int, int]] = []  # (rank, target)
                for rank, target in enumerate(info.acting):
                    if target == CRUSH_ITEM_NONE or target not in up:
                        continue
                    key = shard_object_name(base, rank)
                    if rank in at_auth and target in at_auth[rank][1]:
                        continue
                    need.append((rank, target))
                if not need:
                    continue
                direct = [(r, t) for r, t in need if r in at_auth]
                rebuild = [(r, t) for r, t in need if r not in at_auth]
                if rebuild and len(at_auth) < pool.k:
                    # Fewer than k shards survive anywhere: unrecoverable
                    # until a client rewrites the whole object (so these
                    # keys are NOT write-gated).
                    incomplete += 1
                    mgr.objects_unrecoverable += 1
                    mgr._m_unrecoverable.add()
                    for rank in ranks:
                        info.incomplete_keys.add(shard_object_name(base, rank))
                    rebuild = []
                    direct = []
                for rank, target in direct:
                    key = shard_object_name(base, rank)
                    missing.setdefault(target, set()).add(key)
                    size, holders = at_auth[rank]
                    work.append(("copy", key, auth_ver, size, sorted(holders), [target]))
                if rebuild:
                    for rank, target in rebuild:
                        missing.setdefault(target, set()).add(shard_object_name(base, rank))
                    work.append(("rebuild", base, auth_ver, at_auth, rebuild))

        info.missing = missing
        holes = any(
            o == CRUSH_ITEM_NONE or o not in up for o in info.acting
        )
        if not work:
            if incomplete:
                mgr._set_state(info, PGState.INCOMPLETE)
            elif holes:
                mgr._set_state(info, PGState.DEGRADED)
            else:
                mgr._set_state(info, PGState.ACTIVE)
            mgr._notify(info)
            yield from self._trim(job, pool, listings, census, root)
            return False

        # --- backfill: bounded-parallel object moves ---
        mgr._set_state(info, PGState.BACKFILLING)
        mgr._notify(info)  # peering over: un-gate clean keys
        moved = 0
        span = root.child("backfill", "fanout", objects=len(work)) if root is not None else None
        procs = []
        for item in work:
            if item[0] == "copy":
                _, key, ver, size, sources, targets = item
                gen = self._copy_one(job, pool, key, ver, size, sources, targets, span)
            else:
                _, base, ver, at_auth, rebuild = item
                gen = self._rebuild_one(job, pool, base, ver, at_auth, rebuild, span)
            procs.append(self.env.process(self._windowed(gen), name=f"recov.{self.osd_id}"))
        results = yield self.env.all_of(procs)
        for proc in procs:
            if results[proc]:
                moved += 1
        if span is not None:
            span.finish(moved=moved)
        if self._superseded(job):
            return False

        leftover = any(keys for keys in info.missing.values())
        if incomplete:
            mgr._set_state(info, PGState.INCOMPLETE)
        elif leftover or holes:
            mgr._set_state(info, PGState.DEGRADED)
        elif moved:
            mgr._set_state(info, PGState.RECOVERED)
        else:
            mgr._set_state(info, PGState.ACTIVE)
        mgr._notify(info)
        if not leftover and not incomplete:
            yield from self._trim(job, pool, listings, census, root)
        return info.state is PGState.RECOVERED

    def _windowed(self, gen) -> Generator:
        """Run one object move under the agent's in-flight window."""
        req = self._window.request()
        yield req
        try:
            result = yield from gen
        finally:
            self._window.release(req)
        return result

    def _clear_missing(self, info: PGInfo, osd_id: int, key: str) -> None:
        keys = info.missing.get(osd_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del info.missing[osd_id]
        self.manager._notify(info)

    def _copy_one(self, job, pool, key, ver, size, sources, targets, span) -> Generator:
        """Pull one store key from a surviving holder, push it to every
        member missing it (version-guarded)."""
        mgr = self.manager
        if self._superseded(job):
            return False
        yield from self._throttle(size)
        data = None
        pulled_ver = ver
        for src in sources:
            op = OsdOp(OpKind.PULL, pool.pool_id, key, 0, size, epoch=mgr.osdmap.epoch)
            reply = yield from self._call(src, op, span)
            if reply.ok:
                data = reply.data
                pulled_ver = reply.version
                break
        if data is None:
            mgr.objects_unrecoverable += 1
            mgr._m_unrecoverable.add()
            return False
        mgr._m_bytes_pulled.add(len(data))
        pushed = False
        for target in targets:
            if self._superseded(job):
                return pushed
            yield from self._throttle(len(data))
            op = OsdOp(
                OpKind.PUSH, pool.pool_id, key, 0, len(data),
                data=data, version=pulled_ver, epoch=mgr.osdmap.epoch,
            )
            reply = yield from self._call(target, op, span)
            if reply.ok:
                if reply.stale:
                    mgr._m_stale.add()
                mgr._m_bytes_pushed.add(len(data))
                self._clear_missing(job.info, target, key)
                pushed = True
        if pushed:
            mgr._m_objects.add()
        return pushed

    def _rebuild_one(self, job, pool, base, ver, at_auth, rebuild, span) -> Generator:
        """EC reconstruction: pull k surviving shards, rebuild the lost
        ranks on the agent's CPU, push them to their acting members."""
        mgr = self.manager
        if self._superseded(job):
            return False
        codec = self.daemon.codec_for(pool.pool_id)
        got: dict[int, bytes] = {}
        for rank in sorted(at_auth):
            if len(got) >= pool.k:
                break
            size, holders = at_auth[rank]
            key = shard_object_name(base, rank)
            yield from self._throttle(size)
            for src in sorted(holders):
                op = OsdOp(OpKind.PULL, pool.pool_id, key, 0, size, epoch=mgr.osdmap.epoch)
                reply = yield from self._call(src, op, span)
                if reply.ok:
                    got[rank] = reply.data
                    mgr._m_bytes_pulled.add(len(reply.data))
                    break
        if len(got) < pool.k:
            mgr.objects_unrecoverable += 1
            mgr._m_unrecoverable.add()
            return False
        slots: list[Optional[bytes]] = [got.get(r) for r in range(pool.size)]
        shard_len = max(len(s) for s in got.values())
        t_dec = self.env.now
        yield self.env.timeout(
            self.daemon.config.ec_decode_ns(pool.k, pool.m, shard_len * pool.k)
        )
        if span is not None:
            span.record("ec-reconstruct", "compute", t_dec, self.env.now, object=base)
        pushed = False
        for rank, target in rebuild:
            if self._superseded(job):
                return pushed
            shard = got.get(rank)
            if shard is None:
                shard = codec.reconstruct_shard(slots, rank)
            key = shard_object_name(base, rank)
            yield from self._throttle(len(shard))
            op = OsdOp(
                OpKind.PUSH, pool.pool_id, key, 0, len(shard),
                data=shard, version=ver, epoch=mgr.osdmap.epoch,
            )
            reply = yield from self._call(target, op, span)
            if reply.ok:
                if reply.stale:
                    mgr._m_stale.add()
                mgr._m_bytes_pushed.add(len(shard))
                self._clear_missing(job.info, target, key)
                pushed = True
        if pushed:
            mgr._m_objects.add()
        return pushed

    def _trim(self, job, pool, listings, census, root) -> Generator:
        """Delete stale copies from OSDs no longer responsible for them
        (prevents scrub flagging orphans after a remap)."""
        mgr = self.manager
        info = job.info
        replicated = pool.pool_type == PoolType.REPLICATED
        expected_rep = {o for o in info.acting if o != CRUSH_ITEM_NONE}
        span = root.child("trim", "fanout") if root is not None else None
        trimmed = 0
        for osd_id in sorted(listings):
            for key in sorted(listings[osd_id]):
                if key in info.incomplete_keys:
                    continue  # surviving shards of a lost object stay
                if replicated:
                    stray = osd_id not in expected_rep
                else:
                    base = base_object_name(key)
                    if base == key:
                        stray = True  # non-shard key in an EC pool
                    else:
                        rank = int(key.rsplit(".s", 1)[1])
                        stray = (
                            rank >= len(info.acting) or info.acting[rank] != osd_id
                        )
                if not stray:
                    continue
                if self._superseded(job):
                    if span is not None:
                        span.finish(trimmed=trimmed)
                    return
                op = OsdOp(
                    OpKind.DELETE, pool.pool_id, key, version=-1,
                    epoch=mgr.osdmap.epoch,
                )
                reply = yield from self._call(osd_id, op, span)
                if reply.ok:
                    trimmed += 1
                    mgr._m_trims.add()
        if span is not None:
            span.finish(trimmed=trimmed)
