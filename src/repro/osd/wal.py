"""BlueStore-style transactional commit pipeline (WAL) for one OSD.

The seed's :class:`~repro.osd.objects.ObjectStore` is volatile: an OSD
ack proves nothing about durability, and the only recovery path after a
crash is full backfill.  This module adds the missing crash-consistency
leg.  Writes become transactions against *durable* state — a media-level
:class:`ObjectStore` plus an ordered write-ahead log — staged through
the device's volatile write-back cache and made stable only by explicit
FLUSH/FUA barriers (:meth:`StorageDevice.flush`):

* **deferred writes** (small, <= ``defer_threshold``): the data rides in
  the WAL record itself.  Journal append -> barrier -> ack; the in-place
  media apply happens in the background (BlueStore's deferred-write
  path), and the log entry is trimmed once the apply is flushed.
* **commit writes** (large): data goes to a fresh extent first, then a
  barrier, then a commit record binding the extent (by checksum) to the
  object — an atomic metadata remap, never an overwrite in place.
* **deletes**: journaled, so tombstones survive a power loss.

A ``power_loss`` drops the volatile cache: each un-flushed entry is
persisted, dropped, or **torn** (a prefix of atomic media units lands,
without a checksum update) under seeded RNG draws.  Restart replays the
log against the surviving media image, re-derives checksums, and hands
the OSD back a store in which every *acked* write is present and every
unacked write is atomic — old bytes or new bytes, never a torn hybrid.

Replay invariants (why this is crash-consistent):

* an op is acked only after its WAL record is flushed, so the record is
  durable and replay always reaches it (records enter the log in seq
  order; a gap or torn record can only involve unacked seqs);
* a background apply exists only after its record's barrier, so a torn
  in-place apply is always covered by a durable record: the key is kept
  (``_torn_keys``) and the record's bytes heal the torn range;
* trim requires the apply itself to have been flushed, so trimmed
  records never need replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import ProcessKilled
from ..sim import NULL_METRICS, Environment
from ..units import kib
from .objects import ObjectStore
from .storage import StorageDevice

#: Device key the journal stream is written under (latency accounting
#: only — journal bytes live in :attr:`WriteAheadLog.log`, not in media).
JOURNAL_KEY = "~wal"

#: Modeled on-media size of a record header (seq, kind, key, csum).
RECORD_HEADER_BYTES = 64

#: Checksum sentinel marking a record torn by power loss mid-append.
TORN_CHECKSUM = "~torn~"


@dataclass(frozen=True)
class DurabilityConfig:
    """Tunables of the per-OSD commit pipeline."""

    #: Writes at or below this size take the deferred (journal-data)
    #: path; larger writes stage a fresh extent + commit record.
    defer_threshold: int = kib(32)
    #: Media atomicity granularity: a torn write lands a whole number of
    #: these units (a sector/page), never a partial unit.
    atomic_unit: int = 4096
    #: Whether an interrupted media write can tear at all; False models
    #: media with atomic whole-request writes (e.g. PLP-backed NVMe).
    torn_writes: bool = True
    #: Fate probabilities for each volatile cache entry at power loss:
    #: persisted anyway (made it to media just in time) with
    #: ``persist_p``, torn with ``tear_p``, dropped otherwise.
    persist_p: float = 0.4
    tear_p: float = 0.2
    #: Record (time, kind, seq) persistence-ordering events for the
    #: crash-point explorer.
    record_events: bool = True


@dataclass
class WalRecord:
    """One journaled transaction."""

    seq: int
    kind: str  # "deferred" | "commit" | "delete"
    key: str
    offset: int
    length: int
    version: int
    data: Optional[bytes] = None
    #: Commit records: extent staged before the record, bound by digest.
    extent_key: str = ""
    extent_checksum: str = ""
    #: Whole-object semantics (recovery push): replay deletes any
    #: existing base before writing, so a shorter new object never
    #: inherits a stale tail.
    whole: bool = False
    checksum: str = ""

    def _payload_digest(self) -> str:
        body = repr(
            (
                self.seq,
                self.kind,
                self.key,
                self.offset,
                self.length,
                self.version,
                self.data,
                self.extent_key,
                self.extent_checksum,
                self.whole,
            )
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def seal(self) -> None:
        """Stamp the record checksum (done once, at append)."""
        self.checksum = self._payload_digest()

    @property
    def valid(self) -> bool:
        """True when the stored checksum matches the payload."""
        return self.checksum == self._payload_digest()

    def wire_size(self) -> int:
        """Modeled journal footprint of this record."""
        return RECORD_HEADER_BYTES + (len(self.data) if self.data is not None else 0)


@dataclass
class WalReplayStats:
    """What one restart replay did."""

    records_replayed: int = 0
    #: Records after a gap/torn record — unacked, discarded.
    records_discarded: int = 0
    #: Commit records whose extent was missing or torn.
    commits_skipped: int = 0
    #: Media keys whose content failed the checksum pass (torn writes).
    torn_detected: int = 0
    #: Torn keys with no covering record — dropped (never acked).
    keys_dropped: int = 0
    objects_recovered: int = 0
    bytes_recovered: int = 0


# -- volatile-cache entries ---------------------------------------------------
#
# What the device's write-back cache holds: deferred persistence actions
# against the WAL's durable state.  ``persist()`` runs at flush; a power
# loss instead feeds each entry to ``WriteAheadLog._lose_entry``.


class _WalEntry:
    """A journal append awaiting flush."""

    def __init__(self, wal: "WriteAheadLog", record: WalRecord):
        self.wal = wal
        self.record = record

    def persist(self) -> None:
        self.wal.log.append(self.record)


class _MediaEntry:
    """An in-place data (or extent) write awaiting flush."""

    def __init__(
        self,
        wal: "WriteAheadLog",
        key: str,
        offset: int,
        data: bytes,
        version: Optional[int],
        seq: Optional[int],
        whole: bool = False,
        extent: bool = False,
    ):
        self.wal = wal
        self.key = key
        self.offset = offset
        self.data = data
        self.version = version
        self.seq = seq
        self.whole = whole
        self.extent = extent

    def persist(self) -> None:
        media = self.wal.media
        if self.whole and self.key in media:
            media.delete(self.key)
        media.write(self.key, self.offset, self.data)
        if self.extent:
            self.wal._extents.add(self.key)
        if self.version is not None:
            self.wal.durable_versions[self.key] = self.version
        if self.seq is not None:
            self.wal._applied.add(self.seq)


class _InstallEntry:
    """A commit install (extent -> object metadata remap) awaiting flush."""

    def __init__(self, wal: "WriteAheadLog", record: WalRecord, data: bytes):
        self.wal = wal
        self.record = record
        self.data = data

    def persist(self) -> None:
        wal, rec = self.wal, self.record
        if rec.whole and rec.key in wal.media:
            wal.media.delete(rec.key)
        wal.media.write(rec.key, rec.offset, self.data)
        if rec.extent_key in wal.media:
            wal.media.delete(rec.extent_key)
        wal._extents.discard(rec.extent_key)
        wal.durable_versions[rec.key] = rec.version
        wal._applied.add(rec.seq)


class _DeleteEntry:
    """A journaled delete's media-side effect awaiting flush."""

    def __init__(self, wal: "WriteAheadLog", record: WalRecord):
        self.wal = wal
        self.record = record

    def persist(self) -> None:
        wal, rec = self.wal, self.record
        if rec.key in wal.media:
            wal.media.delete(rec.key)
        if rec.version < 0:
            wal.durable_versions.pop(rec.key, None)
        else:
            wal.durable_versions[rec.key] = rec.version
        wal._applied.add(rec.seq)


class WriteAheadLog:
    """The transactional commit pipeline for one OSD."""

    def __init__(
        self,
        env: Environment,
        device: StorageDevice,
        owner,
        config: Optional[DurabilityConfig] = None,
        rng=None,
        metrics=None,
    ):
        self.env = env
        self.device = device
        #: The OSD daemon: its ``store``/``versions`` are the *visible*
        #: (volatile) state; :meth:`recover` reassigns both after replay.
        self.owner = owner
        self.config = config or DurabilityConfig()
        self.rng = rng
        # -- durable state (survives power loss) --
        self.media = ObjectStore()
        self.log: list[WalRecord] = []
        self.durable_versions: dict[str, int] = {}
        self.checkpoint_seq = 0
        self._applied: set[int] = set()
        self._extents: set[str] = set()
        #: Torn data keys -> seq of the durable record covering the tear
        #: (set at power loss, consumed by the next replay).
        self._torn_keys: dict[str, int] = {}
        # -- pipeline bookkeeping --
        self._seq = 0
        self._journal_off = 0
        self._extent_n = 0
        self._bg: set = set()
        #: (time_ns, kind, seq) persistence-ordering events, for the
        #: crash-point explorer (kinds: append, stage, barrier, apply).
        self.events: list[tuple[int, str, int]] = []
        self.appends = 0
        self.wal_bytes = 0
        self.deferred_writes = 0
        self.commit_writes = 0
        self.trims = 0
        self.replays = 0
        self.power_losses = 0
        metrics = metrics or NULL_METRICS
        self._m_appends = metrics.counter("wal.appends")
        self._m_bytes = metrics.counter("wal.bytes")
        self._m_replays = metrics.counter("wal.replays")
        self._m_replayed = metrics.counter("wal.records_replayed")
        self._m_torn = metrics.counter("wal.torn_detected")
        self._m_dropped = metrics.counter("wal.keys_dropped")

    # -- helpers ---------------------------------------------------------------

    def _event(self, kind: str, seq: int) -> None:
        if self.config.record_events:
            self.events.append((self.env.now, kind, seq))

    def _alloc_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _append(self, record: WalRecord) -> None:
        """Queue a sealed record in the volatile cache (post-device-write,
        so cache order == seq order)."""
        record.seal()
        self.device.cache_write(_WalEntry(self, record))
        self.appends += 1
        self.wal_bytes += record.wire_size()
        self._m_appends.add()
        self._m_bytes.add(record.wire_size())
        self._event("append", record.seq)

    def _barrier(self, span=None) -> Generator:
        """FLUSH/FUA: drain the volatile cache, then trim the log."""
        t0 = self.env.now
        yield from self.device.flush()
        self._trim()
        self._event("barrier", self._seq)
        if span is not None:
            span.record("wal.flush", "service", t0, self.env.now)

    def _trim(self) -> None:
        """Drop the log prefix whose applies are flushed (checkpoint)."""
        while (
            self.log
            and self.log[0].seq == self.checkpoint_seq + 1
            and self.log[0].seq in self._applied
        ):
            rec = self.log.pop(0)
            self._applied.discard(rec.seq)
            self.checkpoint_seq = rec.seq
            self.trims += 1

    def _spawn(self, gen, name: str) -> None:
        proc = self.env.process(gen, name=name)
        self._bg.add(proc)
        proc.callbacks.append(self._reap)

    def _reap(self, proc) -> None:
        self._bg.discard(proc)
        if not proc.ok and not isinstance(proc.value, ProcessKilled):
            raise proc.value

    def halt(self) -> None:
        """Kill background applies (the OSD process died)."""
        for proc in list(self._bg):
            if proc.is_alive:
                proc.interrupt("wal halted")
        self._bg.clear()

    # -- write pipeline --------------------------------------------------------

    def write(
        self,
        name: str,
        offset: int,
        data: bytes,
        sequential: bool,
        version: int,
        span=None,
        whole: bool = False,
    ) -> Generator:
        """Process: one transactional write; durable on return (ackable)."""
        if len(data) <= self.config.defer_threshold:
            yield from self._write_deferred(name, offset, data, version, span, whole)
        else:
            yield from self._write_commit(name, offset, data, sequential, version, span, whole)
        # Visible state updates only after the transaction is durable.
        if whole and name in self.owner.store:
            self.owner.store.delete(name)
        self.owner.store.write(name, offset, data)

    def _write_deferred(
        self, name: str, offset: int, data: bytes, version: int, span, whole: bool
    ) -> Generator:
        """Small write: data rides in the journal; apply in background."""
        self.deferred_writes += 1
        t0 = self.env.now
        wire = RECORD_HEADER_BYTES + len(data)
        yield from self.device.write(JOURNAL_KEY, self._journal_off, wire, True)
        rec = WalRecord(
            self._alloc_seq(), "deferred", name, offset, len(data), version,
            data=data, whole=whole,
        )
        self._journal_off += wire
        self._append(rec)
        if span is not None:
            span.record("wal.append", "service", t0, self.env.now, seq=rec.seq)
        yield from self._barrier(span)
        self._spawn(self._apply_in_place(rec), name=f"wal:{self.owner.entity}:apply{rec.seq}")

    def _apply_in_place(self, rec: WalRecord) -> Generator:
        """Background: write the deferred data into its media location."""
        yield from self.device.write(rec.key, rec.offset, len(rec.data), False)
        self.device.cache_write(
            _MediaEntry(self, rec.key, rec.offset, rec.data, rec.version, rec.seq, rec.whole)
        )
        self._event("apply", rec.seq)

    def _write_commit(
        self,
        name: str,
        offset: int,
        data: bytes,
        sequential: bool,
        version: int,
        span,
        whole: bool,
    ) -> Generator:
        """Large write: fresh extent, barrier, then an atomic commit
        record remapping the extent into the object."""
        self.commit_writes += 1
        self._extent_n += 1
        extent = f"{name}~x{self._extent_n}"
        t0 = self.env.now
        yield from self.device.write(extent, 0, len(data), sequential)
        self.device.cache_write(
            _MediaEntry(self, extent, 0, data, None, None, extent=True)
        )
        self._event("stage", 0)
        if span is not None:
            span.record("wal.stage", "service", t0, self.env.now, extent=extent)
        yield from self._barrier(span)
        t1 = self.env.now
        yield from self.device.write(JOURNAL_KEY, self._journal_off, RECORD_HEADER_BYTES, True)
        rec = WalRecord(
            self._alloc_seq(), "commit", name, offset, len(data), version,
            extent_key=extent,
            extent_checksum=hashlib.sha256(data).hexdigest(),
            whole=whole,
        )
        self._journal_off += RECORD_HEADER_BYTES
        self._append(rec)
        if span is not None:
            span.record("wal.append", "service", t1, self.env.now, seq=rec.seq)
        yield from self._barrier(span)
        # Install is pure metadata: no further device write, just a
        # cache entry applying the remap at the next flush.
        self.device.cache_write(_InstallEntry(self, rec, data))

    def delete(self, name: str, version: int) -> Generator:
        """Process: journal a delete so the tombstone survives a crash."""
        yield from self.device.write(JOURNAL_KEY, self._journal_off, RECORD_HEADER_BYTES, True)
        rec = WalRecord(self._alloc_seq(), "delete", name, 0, 0, version)
        self._journal_off += RECORD_HEADER_BYTES
        self._append(rec)
        yield from self._barrier()
        self.device.cache_write(_DeleteEntry(self, rec))

    def sync(self) -> Generator:
        """Process: explicit barrier (flush everything volatile, trim)."""
        yield from self._barrier()

    # -- power loss ------------------------------------------------------------

    def power_loss(self) -> None:
        """Cut power: resolve the volatile cache under seeded fate draws.

        Fates draw from a child stream forked on the crash *instant*, so
        a crash-point explorer cutting the same seed's timeline at many
        different times sees independent fate sequences — without that,
        every cut would replay the parent stream from position zero and
        sample the same few outcomes.
        """
        self.power_losses += 1
        fates = None if self.rng is None else self.rng.fork(f"ploss@{self.env.now}")
        for entry in self.device.drop_volatile():
            self._lose_entry(entry, fates)

    def _fate(self, rng) -> str:
        if rng is None:
            return "drop"
        r = rng.uniform(0.0, 1.0)
        if r < self.config.persist_p:
            return "persist"
        if self.config.torn_writes and r < self.config.persist_p + self.config.tear_p:
            return "tear"
        return "drop"

    def _lose_entry(self, entry, rng) -> None:
        fate = self._fate(rng)
        if fate == "persist":
            entry.persist()
            return
        if fate != "tear":
            return
        if isinstance(entry, _WalEntry):
            # Torn journal append: the record lands, unreadable.
            entry.record.checksum = TORN_CHECKSUM
            self.log.append(entry.record)
            return
        if isinstance(entry, _DeleteEntry):
            return  # deletes don't tear: persist-or-drop only
        # Media-side tear: a prefix of atomic units lands, silently
        # (no checksum update -> the key fails the replay verify pass).
        if isinstance(entry, _InstallEntry):
            key, offset, data = entry.record.key, entry.record.offset, entry.data
            covering = entry.record.seq
        else:  # _MediaEntry
            key, offset, data = entry.key, entry.offset, entry.data
            covering = entry.seq
        units = max(1, -(-len(data) // self.config.atomic_unit))
        k = rng.randint(0, units)
        prefix = data[: k * self.config.atomic_unit]
        if not prefix:
            return  # tore before the first unit: indistinguishable from drop
        if key not in self.media:
            self.media.write(key, 0, b"")  # settle an empty-content checksum
        self.media.corrupt(key, offset, prefix)
        if covering is not None:
            self._torn_keys[key] = covering
        elif getattr(entry, "extent", False):
            self._extents.add(key)  # torn extent: rejected by its digest

    # -- restart / replay ------------------------------------------------------

    def _replay(self, stats: WalReplayStats) -> tuple[ObjectStore, dict[str, int]]:
        """Pure function of durable state -> (recovered store, versions).

        Checksum pass over media keys first (torn writes detected here;
        torn-but-covered keys are kept and healed by their record), then
        the log replays in seq order up to the first gap or torn record.
        """
        ws = ObjectStore()
        versions = dict(self.durable_versions)
        for key in self.media.object_names():
            if key in self._extents:
                continue  # referenced (or rejected) via commit records
            clean = self.media.verify(key)
            if not clean:
                stats.torn_detected += 1
                self._m_torn.add()
                if key not in self._torn_keys:
                    # Torn with no durable record covering it: the write
                    # was never acked — drop the key, never serve it.
                    stats.keys_dropped += 1
                    self._m_dropped.add()
                    versions.pop(key, None)
                    continue
            ws.write(key, 0, self.media.read(key, 0, self.media.object_size(key)))
        expected = self.checkpoint_seq + 1
        for i, rec in enumerate(self.log):
            if rec.seq != expected or not rec.valid:
                stats.records_discarded += len(self.log) - i
                break
            expected += 1
            if rec.kind == "deferred":
                if rec.whole and rec.key in ws:
                    ws.delete(rec.key)
                ws.write(rec.key, rec.offset, rec.data)
                versions[rec.key] = rec.version
            elif rec.kind == "commit":
                ok = rec.extent_key in self.media and self.media.verify(rec.extent_key)
                if ok:
                    data = self.media.read(rec.extent_key, 0, rec.length)
                    ok = hashlib.sha256(data).hexdigest() == rec.extent_checksum
                if not ok:
                    # Extent torn or lost: the commit never became
                    # durable as a whole — skip it (unacked by
                    # construction: ack follows the record *and* the
                    # extent barrier, and both flushed => both durable).
                    stats.commits_skipped += 1
                    continue
                if rec.whole and rec.key in ws:
                    ws.delete(rec.key)
                ws.write(rec.key, rec.offset, data)
                versions[rec.key] = rec.version
            elif rec.kind == "delete":
                if rec.key in ws:
                    ws.delete(rec.key)
                if rec.version < 0:
                    versions.pop(rec.key, None)
                else:
                    versions[rec.key] = rec.version
            stats.records_replayed += 1
            self._m_replayed.add()
        return ws, versions

    def recover(self) -> WalReplayStats:
        """Restart: replay the log, re-derive checksums, hand the owner a
        crash-consistent store, and checkpoint-compact.

        Synchronous (no simulated time): the outage duration is governed
        by the fault timeline, not the replay.  Also covers a *process*
        crash (power stayed on): surviving volatile entries persist
        first, so nothing acked is lost to a mere restart.
        """
        for entry in self.device.drop_volatile():
            entry.persist()
        stats = WalReplayStats()
        ws, versions = self._replay(stats)
        stats.objects_recovered = len(ws)
        stats.bytes_recovered = ws.used_bytes
        self.owner.store = ws
        self.owner.versions = versions
        # Checkpoint-compact: the recovered image becomes the new media
        # base; the log starts empty past every allocated seq.
        media = ObjectStore()
        for name in ws.object_names():
            media.write(name, 0, ws.read(name, 0, ws.object_size(name)))
        self.media = media
        self.durable_versions = dict(versions)
        self.log = []
        self._applied.clear()
        self._extents.clear()
        self._torn_keys.clear()
        self.checkpoint_seq = self._seq
        self._journal_off = 0
        self.replays += 1
        self._m_replays.add()
        self._event("replay", self.replays)
        return stats

    @property
    def log_depth(self) -> int:
        """Un-trimmed records in the durable log."""
        return len(self.log)


__all__ = [
    "DurabilityConfig",
    "WalRecord",
    "WalReplayStats",
    "WriteAheadLog",
    "JOURNAL_KEY",
]
