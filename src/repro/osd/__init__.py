"""Simulated Ceph substrate: OSD daemons, pools, RADOS client, RBD.

Implements the distributed-storage system DeLiBA accelerates: CRUSH
placement, primary-copy replication, erasure-coded pools with real
Reed-Solomon shards, device media models, failure/recovery, and the
virtual block device (RBD) the block layer sits on.
"""

from .client import RadosClient
from .faults import FaultInjector
from .scrub import Inconsistency, ScrubReport, Scrubber
from .zoned import Zone, ZoneState, ZonedDevice
from .cluster import CephCluster, ClusterSpec, build_cluster
from .fabric import Envelope, Fabric, MessageFaults, Messenger
from .monitor import Monitor, RecoveryStats
from .policy import DEFAULT_POLICY, OpPolicy
from .objects import ObjectStore
from .ops import OP_HEADER_BYTES, OpKind, OsdOp, OsdReply
from .osd import OsdConfig, OsdDaemon, base_object_name, shard_object_name
from .osdmap import OSDMap, OsdState, Pool, PoolType
from .qos import (
    CLASS_CLIENT,
    CLASS_RECOVERY,
    CLASS_SCRUB,
    CLASS_SYSTEM,
    MClockQueue,
    OsdQosScheduler,
    QosConfig,
    QosManager,
    QosSpec,
    QosTag,
    TenantTracker,
)
from .recovery import PGInfo, PGState, RecoveryConfig, RecoveryManager
from .rbd import DEFAULT_OBJECT_SIZE, Extent, RBDImage
from .storage import HDD, NVME_SSD, PROFILES, SATA_SSD, SMR_HDD, MediaProfile, StorageDevice
from .wal import DurabilityConfig, WalRecord, WalReplayStats, WriteAheadLog

__all__ = [
    "CLASS_CLIENT",
    "CLASS_RECOVERY",
    "CLASS_SCRUB",
    "CLASS_SYSTEM",
    "CephCluster",
    "MClockQueue",
    "OsdQosScheduler",
    "QosConfig",
    "QosManager",
    "QosSpec",
    "QosTag",
    "TenantTracker",
    "FaultInjector",
    "Inconsistency",
    "ScrubReport",
    "Scrubber",
    "Zone",
    "ZoneState",
    "ZonedDevice",
    "ClusterSpec",
    "DEFAULT_OBJECT_SIZE",
    "DEFAULT_POLICY",
    "DurabilityConfig",
    "Envelope",
    "MessageFaults",
    "OpPolicy",
    "Extent",
    "Fabric",
    "HDD",
    "MediaProfile",
    "Messenger",
    "Monitor",
    "NVME_SSD",
    "OP_HEADER_BYTES",
    "OSDMap",
    "ObjectStore",
    "OpKind",
    "OsdConfig",
    "OsdDaemon",
    "OsdOp",
    "OsdReply",
    "OsdState",
    "PGInfo",
    "PGState",
    "PROFILES",
    "Pool",
    "PoolType",
    "RecoveryConfig",
    "RecoveryManager",
    "RBDImage",
    "RadosClient",
    "RecoveryStats",
    "SATA_SSD",
    "SMR_HDD",
    "StorageDevice",
    "WalRecord",
    "WalReplayStats",
    "WriteAheadLog",
    "base_object_name",
    "build_cluster",
    "shard_object_name",
]
