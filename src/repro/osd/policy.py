"""Client-side op retry/failover policy.

Every :class:`repro.osd.client.RadosClient` op runs under an
:class:`OpPolicy`: how long to wait for a reply, how many attempts to
make, and how to back off between them.  Backoff jitter draws from a
named sim RNG substream, so retry schedules are bit-reproducible.

The default policy has **no timeout** — a plain reply wait, which keeps
fault-free runs event-identical to a policy-free client (arming a
timeout schedules an extra event and changes process interleaving).
Crashed peers still fail fast through the fabric's connection-reset
bounces; only *silently lost* messages need a timeout, so chaos runs
install a policy with one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import StorageError
from ..units import ms, us


@dataclass(frozen=True)
class OpPolicy:
    """Timeout/retry/backoff parameters for client ops."""

    #: Reply deadline per attempt; None = wait forever (fault-free runs).
    timeout_ns: Optional[int] = None
    #: Total tries per op (1 = no retry).
    max_attempts: int = 3
    #: Backoff before the second attempt.
    backoff_base_ns: int = us(200)
    #: Growth factor per further attempt (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Backoff ceiling.
    backoff_max_ns: int = ms(5)
    #: Relative jitter applied to each backoff (+/- this fraction).
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise StorageError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_ns is not None and self.timeout_ns <= 0:
            raise StorageError(f"timeout_ns must be > 0, got {self.timeout_ns}")
        if self.backoff_base_ns < 0 or self.backoff_max_ns < 0:
            raise StorageError("backoff bounds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise StorageError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise StorageError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_ns(self, attempt: int, rng=None) -> int:
        """Wait before retry number ``attempt`` (1 = before the second try).

        Exponential in ``attempt``, capped at :attr:`backoff_max_ns`,
        with deterministic +/- :attr:`jitter` drawn from ``rng``.  The
        cap applies before jitter, so the effective bound is
        ``backoff_max_ns * (1 + jitter)``.
        """
        if attempt < 1:
            raise StorageError(f"attempt must be >= 1, got {attempt}")
        delay = self.backoff_base_ns * self.backoff_multiplier ** (attempt - 1)
        delay = min(delay, float(self.backoff_max_ns))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0, int(delay))


#: Fault-free default: no timeout (zero extra sim events), modest retry
#: budget that only engages when a peer actively reports failure.
DEFAULT_POLICY = OpPolicy()
