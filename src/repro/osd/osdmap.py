"""The cluster map: OSD states, pools, epochs.

The OSDMap is the authoritative description of the cluster that the
monitor publishes and every client caches.  Any change (device failure,
pool creation, reweight) bumps the epoch; cached CRUSH placements are
only valid for the epoch they were computed at.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..crush import CrushMap, CrushRule, erasure_rule, replicated_rule
from ..errors import StorageError


class PoolType(Enum):
    """Data-durability scheme of a pool."""

    REPLICATED = "replicated"
    ERASURE = "erasure"


@dataclass
class Pool:
    """A named pool with placement parameters (mirrors Ceph's pg_pool_t)."""

    pool_id: int
    name: str
    pool_type: PoolType
    pg_num: int
    size: int  # replicas (replicated) or k+m (erasure)
    k: int = 1
    m: int = 0
    rule: Optional[CrushRule] = None

    def __post_init__(self):
        if self.pg_num < 1:
            raise StorageError(f"pool {self.name!r}: pg_num must be >= 1")
        if self.pool_type == PoolType.ERASURE:
            if self.k < 2:
                raise StorageError(f"EC pool {self.name!r} needs k >= 2, got {self.k}")
            if self.size != self.k + self.m:
                raise StorageError(
                    f"EC pool {self.name!r}: size {self.size} != k+m {self.k + self.m}"
                )
        elif self.size < 1:
            raise StorageError(f"pool {self.name!r}: size must be >= 1")


@dataclass
class OsdState:
    """Liveness/membership of one OSD."""

    osd_id: int
    up: bool = True
    in_cluster: bool = True
    host: str = ""


class OSDMap:
    """Epoch-versioned view of OSD states and pools over a CRUSH map."""

    def __init__(self, crush: CrushMap):
        self.crush = crush
        self.epoch = 1
        self.osds: dict[int, OsdState] = {}
        self.pools: dict[int, Pool] = {}
        self._next_pool_id = 1
        #: Callbacks fired (synchronously) after every epoch bump; the
        #: recovery manager subscribes to re-derive PG states.
        self._watchers: list = []

    def watch(self, callback) -> None:
        """Register ``callback(epoch)`` to run after each epoch bump."""
        self._watchers.append(callback)

    def bump(self) -> int:
        """Advance the epoch and notify watchers; returns the new epoch."""
        self.epoch += 1
        for callback in list(self._watchers):
            callback(self.epoch)
        return self.epoch

    def register_osd(self, osd_id: int, host: str) -> None:
        """Record an OSD's existence and host placement."""
        if osd_id in self.osds:
            raise StorageError(f"osd.{osd_id} already registered")
        self.osds[osd_id] = OsdState(osd_id, host=host)

    def create_replicated_pool(
        self, name: str, pg_num: int, size: int, root_id: int, fault_domain_type: int = 0
    ) -> Pool:
        """New replicated pool with a firstn rule under ``root_id``."""
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        rule = replicated_rule(root_id, fault_domain_type, rule_id=pool_id, name=f"{name}-rule")
        pool = Pool(pool_id, name, PoolType.REPLICATED, pg_num, size, rule=rule)
        self.pools[pool_id] = pool
        self.bump()
        return pool

    def create_erasure_pool(
        self, name: str, pg_num: int, k: int, m: int, root_id: int, fault_domain_type: int = 0
    ) -> Pool:
        """New EC pool with an indep rule under ``root_id``."""
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        rule = erasure_rule(root_id, fault_domain_type, rule_id=pool_id, name=f"{name}-rule")
        pool = Pool(pool_id, name, PoolType.ERASURE, pg_num, k + m, k=k, m=m, rule=rule)
        self.pools[pool_id] = pool
        self.bump()
        return pool

    def pool(self, pool_id: int) -> Pool:
        """Lookup; raises on unknown pool."""
        if pool_id not in self.pools:
            raise StorageError(f"unknown pool {pool_id}")
        return self.pools[pool_id]

    def pool_by_name(self, name: str) -> Pool:
        """Lookup by name."""
        for pool in self.pools.values():
            if pool.name == name:
                return pool
        raise StorageError(f"unknown pool {name!r}")

    def mark_down(self, osd_id: int) -> None:
        """OSD stopped responding: down + out, epoch bump, CRUSH reweight."""
        state = self.osds.get(osd_id)
        if state is None:
            raise StorageError(f"unknown osd.{osd_id}")
        state.up = False
        state.in_cluster = False
        self.crush.mark_out(osd_id)
        self.bump()

    def mark_up(self, osd_id: int) -> None:
        """OSD rejoined."""
        state = self.osds.get(osd_id)
        if state is None:
            raise StorageError(f"unknown osd.{osd_id}")
        state.up = True
        state.in_cluster = True
        self.crush.mark_in(osd_id)
        self.bump()

    def up_osds(self) -> list[int]:
        """Ids of OSDs currently up."""
        return sorted(o.osd_id for o in self.osds.values() if o.up)

    def host_of(self, osd_id: int) -> str:
        """Network host an OSD runs on."""
        if osd_id not in self.osds:
            raise StorageError(f"unknown osd.{osd_id}")
        return self.osds[osd_id].host
