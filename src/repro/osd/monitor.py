"""The monitor: cluster membership authority and recovery coordinator.

Publishes OSDMap epochs; on failure it marks the OSD down+out (bumping
the epoch so client placement caches invalidate) and can drive recovery:
re-replicating / reconstructing the objects the lost OSD held onto the
new acting sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator

from ..crush import CRUSH_ITEM_NONE, PlacementEngine
from ..errors import StorageError
from ..sim import NULL_METRICS, Environment
from .ops import OpKind, OsdOp
from .osd import OsdDaemon, shard_object_name
from .qos import CLASS_SYSTEM, QosTag
from .osdmap import OSDMap, Pool, PoolType

#: Most recent failure detections remembered (bounded: a long chaos run
#: with flapping links must not grow monitor state without limit).
FAILURES_DETECTED_CAP = 1024


@dataclass
class RecoveryStats:
    """Outcome of one recovery pass."""

    objects_examined: int = 0
    objects_recovered: int = 0
    bytes_moved: int = 0
    #: EC objects skipped because fewer than k shards survive anywhere.
    unrecoverable: int = 0


class Monitor:
    """Membership and recovery controller.

    When given a fabric messenger (the ``mon`` entity), the monitor can
    run **heartbeats**: periodic PING ops to every up OSD; an OSD that
    misses its reply deadline is declared down (epoch bump), so failures
    are *detected*, not just operator-injected.  ``down_out_interval_ns``
    adds flap damping: an OSD is only marked down after failing probes
    continuously for that long (0 = first miss, the historical default).
    """

    def __init__(self, env: Environment, osdmap: OSDMap, daemons: dict[int, OsdDaemon],
                 messenger=None, metrics=None, down_out_interval_ns: int = 0):
        self.env = env
        self.osdmap = osdmap
        self.daemons = daemons
        self.messenger = messenger
        self.down_out_interval_ns = down_out_interval_ns
        self._heartbeat_proc = None
        self._hb_running = False
        #: osd_id -> sim time of the first unanswered probe of the
        #: current suspicion window (cleared when a probe succeeds).
        self._suspect_since: dict[int, int] = {}
        self.failures_detected: deque[int] = deque(maxlen=FAILURES_DETECTED_CAP)
        self.flaps_suppressed = 0
        metrics = metrics or NULL_METRICS
        self._m_failures = metrics.counter("mon.failures_detected")
        self._m_flaps = metrics.counter("mon.flaps_suppressed")
        self._m_hb_rtt = metrics.distribution("mon.heartbeat_rtt_ns")

    # -- heartbeats --------------------------------------------------------------

    def start_heartbeats(self, interval_ns: int, grace_ns: int) -> None:
        """Begin probing every up OSD each ``interval_ns``; an OSD whose
        PING reply misses ``grace_ns`` is marked down."""
        if self.messenger is None:
            raise StorageError("heartbeats need a fabric messenger (mon entity)")
        if self._heartbeat_proc is not None:
            raise StorageError("heartbeats already running")
        self._hb_running = True
        self._heartbeat_proc = self.env.process(
            self._heartbeat_loop(interval_ns, grace_ns), name="mon.heartbeat"
        )

    def stop_heartbeats(self) -> None:
        """Stop the probe loop (in-flight probes drain without effect)."""
        self._hb_running = False
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("stopped")
        self._heartbeat_proc = None

    def _heartbeat_loop(self, interval_ns: int, grace_ns: int):
        while True:
            yield self.env.timeout(interval_ns)
            # Each probe resolves independently: one hung OSD's grace
            # window must not delay marking every *other* dead OSD down
            # (the old all_of barrier head-of-line blocked on the
            # slowest probe).
            for osd_id in self.osdmap.up_osds():
                self.env.process(self._probe_one(osd_id, grace_ns), name=f"hb.{osd_id}")

    def _probe_one(self, osd_id: int, grace_ns: int):
        t0 = self.env.now
        reply = yield from self.messenger.call(
            f"osd.{osd_id}",
            # Heartbeats ride the reserved ``system`` class: detection
            # latency must not degrade when tenants saturate the OSDs.
            OsdOp(OpKind.PING, 0, "ping", qos=QosTag(svc=CLASS_SYSTEM)),
            timeout_ns=grace_ns
        )
        if not self._hb_running:
            return
        if reply.ok:
            self._m_hb_rtt.record(self.env.now - t0)
            if self._suspect_since.pop(osd_id, None) is not None:
                # Probes recovered before down_out_interval elapsed: the
                # flap is damped, no epoch is published.
                self.flaps_suppressed += 1
                self._m_flaps.add()
            return
        if not self.osdmap.osds[osd_id].up:
            return
        since = self._suspect_since.setdefault(osd_id, t0)
        if self.env.now - since >= self.down_out_interval_ns:
            self._suspect_since.pop(osd_id, None)
            self.osdmap.mark_down(osd_id)
            self.failures_detected.append(osd_id)
            self._m_failures.add()

    def fail_osd(self, osd_id: int) -> None:
        """Declare an OSD dead: stop its daemon and publish a new epoch."""
        daemon = self.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        daemon.stop()
        self.osdmap.mark_down(osd_id)

    def revive_osd(self, osd_id: int) -> None:
        """Bring a previously failed OSD back.

        Without a WAL the store really is cleared: the volatile seed
        store cannot prove anything about its pre-failure content, so
        serving it would be silent data loss; until backfill completes
        the daemon answers absent reads with a retryable "missing during
        backfill" error (clients fail over) instead of authoritative
        absence.  A durable OSD instead replays its WAL: everything
        acked before the failure survives, and recovery only ships the
        delta written during the outage."""
        daemon = self.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        if daemon.wal is not None:
            daemon.restart_from_wal()
        else:
            daemon.reset_for_backfill()
        daemon.start()
        self._suspect_since.pop(osd_id, None)
        self.osdmap.mark_up(osd_id)

    def recover_pool(self, pool: Pool, helper_daemon: OsdDaemon) -> Generator:
        """Process: restore full durability for every object in ``pool``.

        ``helper_daemon`` is any live OSD used to perform reads/writes of
        missing copies (a stand-in for Ceph's per-PG recovery agents).
        Returns :class:`RecoveryStats`.
        """
        stats = RecoveryStats()
        placement = PlacementEngine(self.osdmap.crush)
        live = {o: self.daemons[o] for o in self.osdmap.up_osds()}
        # Collect every logical object known to any live OSD in this pool.
        names: set[str] = set()
        for daemon in live.values():
            for key in daemon.store.object_names():
                base = key.split(".s")[0] if pool.pool_type == PoolType.ERASURE else key
                names.add(base)
        for name in sorted(names):
            stats.objects_examined += 1
            acting = placement.object_to_osds(
                pool.pool_id, name, pool.pg_num, pool.rule, pool.size
            )[1]
            if pool.pool_type == PoolType.REPLICATED:
                moved = yield from self._recover_replicated(name, acting, live, helper_daemon)
            else:
                moved = yield from self._recover_ec(
                    pool, name, acting, live, helper_daemon, stats
                )
            if moved:
                stats.objects_recovered += 1
                stats.bytes_moved += moved
        # A full pass restored every recoverable object, so revived-empty
        # members are populated: absent now really means "never existed".
        for daemon in live.values():
            daemon.backfill_reserve = False
        return stats

    def _recover_replicated(self, name, acting, live, helper) -> Generator:
        holders = [o for o in live if name in live[o].store]
        if not holders:
            return 0
        source = holders[0]
        data = live[source].store.read(name, 0, live[source].store.object_size(name))
        moved = 0
        for target in acting:
            if target == CRUSH_ITEM_NONE or target in holders or target not in live:
                continue
            op = OsdOp(
                OpKind.WRITE_DIRECT,
                0,
                name,
                0,
                len(data),
                data=data,
                epoch=self.osdmap.epoch,
                qos=QosTag(svc=CLASS_SYSTEM),
            )
            yield from helper.call(f"osd.{target}", op)
            moved += len(data)
        return moved

    def _recover_ec(self, pool: Pool, name, acting, live, helper, stats) -> Generator:
        codec = helper.codec_for(pool.pool_id)
        # Gather surviving shards from live OSDs.
        shards: list = [None] * pool.size
        for rank in range(pool.size):
            key = shard_object_name(name, rank)
            for osd_id, daemon in live.items():
                if key in daemon.store:
                    shards[rank] = daemon.store.read(key, 0, daemon.store.object_size(key))
                    break
        present = sum(1 for s in shards if s is not None)
        if present < pool.k:
            # Unrecoverable (fewer than k shards survive anywhere): skip
            # and count rather than aborting the whole pass mid-pool.
            stats.unrecoverable += 1
            return 0
        moved = 0
        for rank, target in enumerate(acting):
            if target == CRUSH_ITEM_NONE or target not in live:
                continue
            key = shard_object_name(name, rank)
            if key in live[target].store:
                continue
            shard = shards[rank]
            if shard is None:
                shard = codec.reconstruct_shard(shards, rank)
                shards[rank] = shard
            op = OsdOp(
                OpKind.SHARD_WRITE,
                pool.pool_id,
                name,
                0,
                len(shard),
                data=shard,
                shard=rank,
                epoch=self.osdmap.epoch,
                qos=QosTag(svc=CLASS_SYSTEM),
            )
            yield from helper.call(f"osd.{target}", op)
            moved += len(shard)
        return moved
