"""Cluster builder: network + CRUSH + OSD daemons + monitor in one call.

``build_cluster(env)`` reproduces the paper's testbed by default: one
client node and two storage servers with 16 OSDs each (32 total), all on
a 10 GbE star measured at 9.8 Gb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crush import BucketAlg, build_two_level_cluster
from ..errors import StorageError
from ..net.stack import KERNEL_TCP, StackProfile
from ..net.topology import Network
from ..sim import Environment, RngRegistry
from .client import RadosClient
from .fabric import Fabric, Messenger
from .monitor import Monitor
from .osd import OsdConfig, OsdDaemon
from .osdmap import OSDMap, Pool
from .policy import OpPolicy
from .storage import NVME_SSD, MediaProfile, StorageDevice
from .wal import DurabilityConfig, WriteAheadLog
from ..status import BlkStatus


@dataclass
class ClusterSpec:
    """Shape and parameters of a simulated cluster."""

    num_server_hosts: int = 2
    osds_per_host: int = 16
    num_clients: int = 1
    media: MediaProfile = NVME_SSD
    osd_config: OsdConfig = field(default_factory=OsdConfig)
    client_stack: StackProfile = KERNEL_TCP
    bucket_alg: BucketAlg = BucketAlg.STRAW2
    #: Retry/failover policy installed on every client this cluster mints.
    op_policy: OpPolicy = field(default_factory=OpPolicy)
    #: Per-OSD transactional commit pipeline (``repro.osd.wal``); None
    #: (the default) keeps the volatile seed write path byte-identical.
    durability: Optional[DurabilityConfig] = None
    seed: int = 0


class CephCluster:
    """Everything needed to run object I/O experiments."""

    def __init__(self, env: Environment, spec: Optional[ClusterSpec] = None, metrics=None):
        self.env = env
        self.spec = spec or ClusterSpec()
        self.rng = RngRegistry(self.spec.seed)
        #: Stack-wide MetricsRegistry (no-op unless one is passed in).
        self.metrics = metrics
        self.network = Network(env, metrics=metrics)
        # Hosts: client0..N and server0..M.
        self.client_hosts = [f"clienthost{i}" for i in range(self.spec.num_clients)]
        self.server_hosts = [f"server{i}" for i in range(self.spec.num_server_hosts)]
        for host in self.client_hosts + self.server_hosts:
            self.network.add_host(host)
        # CRUSH hierarchy mirrors the host layout.
        self.crush, self.root_id = build_two_level_cluster(
            self.spec.num_server_hosts,
            self.spec.osds_per_host,
            host_alg=self.spec.bucket_alg,
            root_alg=self.spec.bucket_alg,
        )
        self.osdmap = OSDMap(self.crush)
        self.fabric = Fabric(env, self.network)
        # OSD daemons.
        self.daemons: dict[int, OsdDaemon] = {}
        for h, host in enumerate(self.server_hosts):
            for d in range(self.spec.osds_per_host):
                osd_id = h * self.spec.osds_per_host + d
                self.osdmap.register_osd(osd_id, host)
                self.fabric.register(f"osd.{osd_id}", host, KERNEL_TCP)
                device = StorageDevice(
                    env,
                    self.spec.media,
                    rng=self.rng.stream(f"dev.{osd_id}"),
                    name=f"osd.{osd_id}",
                )
                daemon = OsdDaemon(
                    env, osd_id, self.fabric, device, self.osdmap, self.spec.osd_config,
                    metrics=metrics,
                )
                self._attach_wal(daemon)
                daemon.start()
                self.daemons[osd_id] = daemon
        # The monitor lives on the first server and can run heartbeats.
        self.fabric.register("mon", self.server_hosts[0], KERNEL_TCP)
        mon_messenger = Messenger(env, self.fabric, "mon")
        mon_messenger.start()
        self.monitor = Monitor(
            env, self.osdmap, self.daemons, messenger=mon_messenger, metrics=metrics
        )
        #: Online self-healing manager; None until enable_recovery().
        self.recovery = None
        #: Multi-tenant QoS manager; None until enable_qos().
        self.qos = None
        self._clients: dict[str, RadosClient] = {}
        #: registry of written objects for recovery/scrub helpers:
        #: name -> (pool_id, length)
        self.object_registry: dict[str, tuple[int, int]] = {}

    # -- clients -------------------------------------------------------------

    def new_client(self, name: str = "", stack: Optional[StackProfile] = None) -> RadosClient:
        """Create (and start) a client entity on a client host."""
        name = name or f"client{len(self._clients)}"
        if name in self._clients:
            raise StorageError(f"client {name!r} already exists")
        host = self.client_hosts[len(self._clients) % len(self.client_hosts)]
        self.fabric.register(name, host, stack or self.spec.client_stack)
        client = RadosClient(
            self.env,
            self.fabric,
            self.osdmap,
            name,
            policy=self.spec.op_policy,
            rng=self.rng.stream(f"backoff.{name}"),
            metrics=self.metrics,
        )
        client.start()
        self._clients[name] = client
        if self.qos is not None:
            self.qos.attach_messenger(client)
        return client

    def client(self, name: str) -> RadosClient:
        """Lookup an existing client."""
        if name not in self._clients:
            raise StorageError(f"unknown client {name!r}")
        return self._clients[name]

    # -- pools ----------------------------------------------------------------

    def create_replicated_pool(self, name: str, pg_num: int = 128, size: int = 3) -> Pool:
        """Replicated pool over the cluster root (device-level domains)."""
        return self.osdmap.create_replicated_pool(name, pg_num, size, self.root_id)

    def create_erasure_pool(self, name: str, pg_num: int = 128, k: int = 4, m: int = 2) -> Pool:
        """EC pool over the cluster root."""
        return self.osdmap.create_erasure_pool(name, pg_num, k, m, self.root_id)

    # -- expansion -----------------------------------------------------------------

    def add_osd(self, server_host: str, weight: float = 1.0) -> int:
        """Provision a new OSD on ``server_host``: device, daemon, CRUSH.

        Returns the new OSD id; the epoch bumps so clients repeer.
        """
        if server_host not in self.server_hosts:
            raise StorageError(f"unknown server host {server_host!r}")
        dev_id = self.crush.add_device(f"osd.{len(self.crush.devices)}", weight)
        host_index = self.server_hosts.index(server_host)
        # Host buckets were created in server order before the root.
        host_bucket = sorted(
            (bid for bid, t in self.crush.bucket_types.items() if t == 1), reverse=True
        )[host_index]
        self.crush.add_device_to_bucket(host_bucket, dev_id)
        self.osdmap.register_osd(dev_id, server_host)
        self.fabric.register(f"osd.{dev_id}", server_host, KERNEL_TCP)
        device = StorageDevice(
            self.env, self.spec.media, rng=self.rng.stream(f"dev.{dev_id}"), name=f"osd.{dev_id}"
        )
        daemon = OsdDaemon(
            self.env, dev_id, self.fabric, device, self.osdmap, self.spec.osd_config,
            metrics=self.metrics,
        )
        self._attach_wal(daemon)
        daemon.start()
        self.daemons[dev_id] = daemon
        if self.recovery is not None:
            daemon.recovery_ledger = self.recovery
        if self.qos is not None:
            self.qos.attach_osd(daemon)
        self.osdmap.bump()
        return dev_id

    # -- self-healing --------------------------------------------------------------

    def enable_recovery(self, config=None, tracer=None):
        """Turn on the online self-healing subsystem (PG state machine,
        peering, background recovery agents — see ``repro.osd.recovery``).

        Off by default so fault-free runs stay event-identical; once
        enabled, every OSDMap epoch bump triggers PG peering and any
        missing copies are backfilled through the fabric while client IO
        continues.  Returns the :class:`~repro.osd.recovery.RecoveryManager`.
        """
        from .recovery import RecoveryManager

        if config is not None and getattr(config, "client_priority", False):
            # Client-priority recovery is expressed through the QoS
            # scheduler's ``recovery`` service class, not ad-hoc backoff.
            self.enable_qos()
        if self.recovery is None:
            self.recovery = RecoveryManager(
                self.env, self, config, metrics=self.metrics, tracer=tracer
            )
            if self.qos is not None:
                for agent in self.recovery._agents.values():
                    self.qos.attach_messenger(agent.messenger)
        return self.recovery

    # -- multi-tenant QoS ----------------------------------------------------------

    def enable_qos(self, config=None):
        """Turn on the mClock-style multi-tenant QoS subsystem (per-OSD
        tag scheduler, dmClock distributed tags — see ``repro.osd.qos``).

        Off by default so untagged runs stay event-identical; once
        enabled, every OSD admits work through a reservation/weight/limit
        tag queue and client/recovery/scrub traffic is shaped per the
        :class:`~repro.osd.qos.QosConfig`.  Returns the
        :class:`~repro.osd.qos.QosManager`.
        """
        from .qos import QosManager

        if self.qos is None:
            self.qos = QosManager(self.env, self, config, metrics=self.metrics)
        return self.qos

    # -- durability ----------------------------------------------------------------

    def _attach_wal(self, daemon: OsdDaemon) -> None:
        """Install the commit pipeline on a daemon when configured."""
        if self.spec.durability is None:
            return
        daemon.wal = WriteAheadLog(
            self.env,
            daemon.device,
            daemon,
            self.spec.durability,
            rng=self.rng.stream(f"wal.{daemon.osd_id}"),
            metrics=self.metrics,
        )

    # -- failure injection --------------------------------------------------------

    def fail_osd(self, osd_id: int) -> None:
        """Kill an OSD (daemon stops; epoch bumps; CRUSH remaps)."""
        self.monitor.fail_osd(osd_id)

    def crash_osd(self, osd_id: int) -> None:
        """Crash an OSD *silently*: in-flight ops die with connection
        resets but nobody marks it down — detection is the heartbeat
        loop's job (the realistic chaos scenario)."""
        daemon = self.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        daemon.stop()

    def power_loss_osd(self, osd_id: int) -> None:
        """Cut power to an OSD at this instant.

        In-flight ops bounce with the retryable AGAIN status, the
        device's volatile write-back cache resolves under seeded fate
        draws (persisted / dropped / torn), and nobody marks the OSD
        down — like :meth:`crash_osd`, detection is the heartbeats' job.
        Requires a durable cluster (``ClusterSpec.durability``).
        """
        daemon = self.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        if daemon.wal is None:
            raise StorageError(
                f"osd.{osd_id} has no WAL: power loss needs ClusterSpec.durability"
            )
        daemon.stop(status=BlkStatus.AGAIN)
        daemon.wal.power_loss()

    def power_on_osd(self, osd_id: int):
        """Restore power: WAL replay, rejoin, and *delta* recovery.

        The replayed store keeps everything acked before the cut, so the
        recovery census only ships keys written during the outage.
        Returns the :class:`~repro.osd.wal.WalReplayStats`.
        """
        daemon = self.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        stats = daemon.restart_from_wal()
        daemon.start()
        if not self.osdmap.osds[osd_id].up:
            self.osdmap.mark_up(osd_id)
        else:
            # Nobody noticed the outage: bump so peers re-peer anyway.
            self.osdmap.bump()
        if self.recovery is not None:
            # Force a census even when no epoch changed during the
            # outage — writes that raced the cut may be missing here.
            self.recovery.kick()
        return stats

    def any_live_daemon(self) -> OsdDaemon:
        """A live daemon usable as recovery helper."""
        for osd_id in self.osdmap.up_osds():
            return self.daemons[osd_id]
        raise StorageError("no live OSDs")

    # -- stats ----------------------------------------------------------------------

    def total_ops_served(self) -> int:
        """Sum of ops served by all OSDs."""
        return sum(d.ops_served for d in self.daemons.values())


def build_cluster(
    env: Environment, spec: Optional[ClusterSpec] = None, metrics=None
) -> CephCluster:
    """Convenience constructor (paper testbed by default)."""
    return CephCluster(env, spec, metrics=metrics)
