"""RADOS-style operation and reply messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..status import BlkStatus

#: Serialized header bytes per op/reply (MOSDOp envelope).
OP_HEADER_BYTES = 200

_op_ids = itertools.count(1)


class OpKind(Enum):
    """Operation types understood by an OSD."""

    READ = "read"  # replicated read from primary
    WRITE = "write"  # replicated write via primary (primary fans out)
    WRITE_DIRECT = "write_direct"  # one replica written directly (DeLiBA client fan-out)
    REP_WRITE = "rep_write"  # primary -> replica sub-op
    SHARD_WRITE = "shard_write"  # one EC shard written directly
    SHARD_READ = "shard_read"  # one EC shard read
    EC_WRITE = "ec_write"  # EC write via primary (primary encodes + fans out)
    EC_READ = "ec_read"  # EC read via primary (primary gathers + decodes)
    DELETE = "delete"
    PING = "ping"  # liveness probe (heartbeats)


@dataclass
class OsdOp:
    """A client (or peer) request to one OSD."""

    kind: OpKind
    pool_id: int
    object_name: str
    offset: int = 0
    length: int = 0
    data: Optional[bytes] = None
    #: Acting set computed by the sender (Ceph clients address by map).
    acting: tuple[int, ...] = ()
    #: Shard index for EC shard ops.
    shard: int = -1
    #: Write-pattern hint for the media model.
    sequential: bool = False
    epoch: int = 0
    #: Causal span of the attempt leg carrying this op (repro.obs);
    #: travels with the message so the serving OSD can attach its
    #: queue/service sub-spans.  Never serialized or compared.
    obs_span: Optional[object] = field(default=None, repr=False, compare=False)
    op_id: int = field(default_factory=lambda: next(_op_ids))

    def wire_size(self) -> int:
        """Bytes this op occupies on the network."""
        return OP_HEADER_BYTES + (len(self.data) if self.data is not None else 0)


@dataclass
class OsdReply:
    """Completion sent back to the requester."""

    op_id: int
    ok: bool
    data: Optional[bytes] = None
    error: str = ""
    epoch: int = 0
    #: Kernel-style status carried alongside the error string; failed
    #: replies default to IOERR unless the sender classified them
    #: (TIMEOUT, TRANSPORT, MEDIUM).
    status: BlkStatus = BlkStatus.OK

    def __post_init__(self):
        if not self.ok and self.status is BlkStatus.OK:
            self.status = BlkStatus.IOERR

    def wire_size(self) -> int:
        """Bytes this reply occupies on the network."""
        return OP_HEADER_BYTES + (len(self.data) if self.data is not None else 0)
