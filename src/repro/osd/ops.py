"""RADOS-style operation and reply messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..status import BlkStatus
from .qos import QosTag

#: Serialized header bytes per op/reply (MOSDOp envelope).
OP_HEADER_BYTES = 200

_op_ids = itertools.count(1)


class OpKind(Enum):
    """Operation types understood by an OSD."""

    READ = "read"  # replicated read from primary
    WRITE = "write"  # replicated write via primary (primary fans out)
    WRITE_DIRECT = "write_direct"  # one replica written directly (DeLiBA client fan-out)
    REP_WRITE = "rep_write"  # primary -> replica sub-op
    SHARD_WRITE = "shard_write"  # one EC shard written directly
    SHARD_READ = "shard_read"  # one EC shard read
    EC_WRITE = "ec_write"  # EC write via primary (primary encodes + fans out)
    EC_READ = "ec_read"  # EC read via primary (primary gathers + decodes)
    DELETE = "delete"
    PING = "ping"  # liveness probe (heartbeats)
    PG_LIST = "pg_list"  # peering: list one PG's store keys + versions
    PULL = "pull"  # recovery: read a full store key (data + version)
    PUSH = "push"  # recovery: version-guarded whole-object install


@dataclass
class OsdOp:
    """A client (or peer) request to one OSD."""

    kind: OpKind
    pool_id: int
    object_name: str
    offset: int = 0
    length: int = 0
    data: Optional[bytes] = None
    #: Acting set computed by the sender (Ceph clients address by map).
    acting: tuple[int, ...] = ()
    #: Shard index for EC shard ops.
    shard: int = -1
    #: Write-pattern hint for the media model.
    sequential: bool = False
    epoch: int = 0
    #: Mutation version (PUSH carries the version the data was pulled
    #: at; replica sub-ops carry the parent op's id so every copy of one
    #: logical write records the same version).  0 = use the op's own id.
    version: int = 0
    #: PG index for PG_LIST peering ops.
    pg: int = -1
    #: Causal span of the attempt leg carrying this op (repro.obs);
    #: travels with the message so the serving OSD can attach its
    #: queue/service sub-spans.  Never serialized or compared.
    obs_span: Optional[object] = field(default=None, repr=False, compare=False)
    #: QoS identity (tenant + service class + dmClock rho/delta).  Inert
    #: until a cluster enables QoS; excluded from repr/compare so the
    #: tag never leaks into digests.  Not counted in wire_size (a few
    #: piggybacked bytes, dmClock-style).
    qos: Optional[QosTag] = field(default=None, repr=False, compare=False)
    op_id: int = field(default_factory=lambda: next(_op_ids))

    def wire_size(self) -> int:
        """Bytes this op occupies on the network."""
        return OP_HEADER_BYTES + (len(self.data) if self.data is not None else 0)


@dataclass
class OsdReply:
    """Completion sent back to the requester."""

    op_id: int
    ok: bool
    data: Optional[bytes] = None
    error: str = ""
    epoch: int = 0
    #: Kernel-style status carried alongside the error string; failed
    #: replies default to IOERR unless the sender classified them
    #: (TIMEOUT, TRANSPORT, MEDIUM).
    status: BlkStatus = BlkStatus.OK
    #: Version of the returned object (PULL replies).
    version: int = 0
    #: Peering listing for PG_LIST replies: store key -> (version, size).
    listing: Optional[dict[str, tuple[int, int]]] = None
    #: PUSH replies: the install was skipped because local data is newer.
    stale: bool = False
    #: dmClock phase feedback (``repro.osd.qos.PHASE_*``): which phase
    #: the serving OSD dispatched the op in; 0 when QoS is off.
    qos_phase: int = 0

    #: Serialized bytes per peering listing entry (key + version + size).
    LISTING_ENTRY_BYTES = 64

    def __post_init__(self):
        if not self.ok and self.status is BlkStatus.OK:
            self.status = BlkStatus.IOERR

    def wire_size(self) -> int:
        """Bytes this reply occupies on the network."""
        size = OP_HEADER_BYTES + (len(self.data) if self.data is not None else 0)
        if self.listing is not None:
            size += self.LISTING_ENTRY_BYTES * len(self.listing)
        return size
