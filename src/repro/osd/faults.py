"""Fault injection: gray failures, chaos faults, and scheduled timelines.

Enterprise clusters (the paper's deployment context) suffer *gray*
failures — components that respond, just slowly — which inflate tail
latency long before the monitor declares anything down.  This module
injects such faults into a live cluster so their p99 impact, and the
effectiveness of marking the culprit out, can be measured.

Beyond gray slowdowns the injector also drives **chaos** faults: random
message drop/duplication/corruption on the fabric, silent OSD crashes
mid-op, link flaps, and whole fault *timelines* scheduled at simulation
timestamps.  All randomness draws from named sim RNG substreams, so a
chaos run replays bit-identically for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import StorageError
from ..sim import Process
from .fabric import MessageFaults
from .storage import MediaProfile, StorageDevice

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import CephCluster


def _scaled_profile(profile: MediaProfile, factor: float) -> MediaProfile:
    """A media profile slowed down by ``factor``."""
    return MediaProfile(
        name=f"{profile.name}-slow{factor:g}x",
        seq_read_ns=int(profile.seq_read_ns * factor),
        rand_read_ns=int(profile.rand_read_ns * factor),
        seq_write_ns=int(profile.seq_write_ns * factor),
        rand_write_ns=int(profile.rand_write_ns * factor),
        read_bw=profile.read_bw / factor,
        write_bw=profile.write_bw / factor,
        channels=profile.channels,
        readahead_hit_ns=int(profile.readahead_hit_ns * factor),
        jitter_sigma=profile.jitter_sigma,
        flush_ns=int(profile.flush_ns * factor),
    )


@dataclass
class FaultInjector:
    """Applies and reverts gray + chaos faults on a cluster."""

    cluster: "CephCluster"
    _original_profiles: dict[int, MediaProfile] = field(default_factory=dict)
    _original_bandwidth: dict[str, float] = field(default_factory=dict)
    _downed_links: set = field(default_factory=set)
    #: OSDs crashed through this injector (silent crashes).
    crashed_osds: list = field(default_factory=list)
    #: OSDs currently without power (power_loss / restore_power).
    powered_off: list = field(default_factory=list)
    _timeline_procs: list = field(default_factory=list)

    def slow_device(self, osd_id: int, factor: float) -> None:
        """Multiply one OSD's media latencies by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise StorageError(f"slowdown factor must be >= 1, got {factor}")
        daemon = self.cluster.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        device: StorageDevice = daemon.device
        self._original_profiles.setdefault(osd_id, device.profile)
        device.profile = _scaled_profile(self._original_profiles[osd_id], factor)

    def restore_device(self, osd_id: int) -> None:
        """Undo a device slowdown."""
        original = self._original_profiles.pop(osd_id, None)
        if original is None:
            raise StorageError(f"osd.{osd_id} has no injected fault")
        self.cluster.daemons[osd_id].device.profile = original

    def degrade_host_link(self, host: str, factor: float) -> None:
        """Divide a host's up/down link bandwidth by ``factor``."""
        if factor < 1.0:
            raise StorageError(f"degradation factor must be >= 1, got {factor}")
        node = self.cluster.network.host(host)
        for link in (node.uplink, node.downlink):
            self._original_bandwidth.setdefault(link.name, link.bandwidth_bps)
            link.bandwidth_bps = self._original_bandwidth[link.name] / factor

    def restore_host_link(self, host: str) -> None:
        """Undo a link degradation."""
        node = self.cluster.network.host(host)
        restored = False
        for link in (node.uplink, node.downlink):
            original = self._original_bandwidth.pop(link.name, None)
            if original is not None:
                link.bandwidth_bps = original
                restored = True
        if not restored:
            raise StorageError(f"host {host!r} has no injected link fault")

    # -- chaos: message-level faults ------------------------------------------

    def set_message_faults(
        self,
        drop_p: float = 0.0,
        duplicate_p: float = 0.0,
        corrupt_p: float = 0.0,
        rng=None,
    ) -> MessageFaults:
        """Install probabilistic drop/duplicate/corrupt on the fabric.

        Applies to every cross-host message from now on.  Probabilities
        draw from the cluster's ``chaos`` RNG substream unless ``rng``
        is given, so the fault pattern is seed-deterministic.  Returns
        the live :class:`MessageFaults` (its counters keep tallies).
        """
        for name, p in (("drop_p", drop_p), ("duplicate_p", duplicate_p),
                        ("corrupt_p", corrupt_p)):
            if not 0.0 <= p <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {p}")
        faults = MessageFaults(
            rng=rng if rng is not None else self.cluster.rng.stream("chaos"),
            drop_p=drop_p,
            duplicate_p=duplicate_p,
            corrupt_p=corrupt_p,
        )
        self.cluster.fabric.faults = faults
        return faults

    def clear_message_faults(self) -> None:
        """Remove fabric-level message faults."""
        self.cluster.fabric.faults = None

    # -- chaos: crashes and link flaps ----------------------------------------

    def crash_osd(self, osd_id: int) -> None:
        """Silently crash an OSD mid-op (see ``CephCluster.crash_osd``)."""
        self.cluster.crash_osd(osd_id)
        self.crashed_osds.append(osd_id)

    # -- chaos: power loss -----------------------------------------------------

    def power_loss(self, osd_id: int) -> None:
        """Cut power to a durable OSD at the current sim instant.

        The volatile write-back cache resolves under seeded fate draws
        (some entries persist, some drop, some *tear* a prefix of atomic
        units), in-flight client ops bounce with the retryable AGAIN
        status, and nobody marks the OSD down — heartbeats detect it.
        See ``CephCluster.power_loss_osd``.
        """
        self.cluster.power_loss_osd(osd_id)
        self.powered_off.append(osd_id)

    def restore_power(self, osd_id: int):
        """Restore power to an OSD cut via :meth:`power_loss`.

        The OSD replays its WAL and rejoins with log-based delta
        recovery.  Returns the :class:`~repro.osd.wal.WalReplayStats`.
        """
        if osd_id not in self.powered_off:
            raise StorageError(f"osd.{osd_id} has no injected power loss")
        stats = self.cluster.power_on_osd(osd_id)
        self.powered_off.remove(osd_id)
        return stats

    def set_link(self, host: str, up: bool) -> None:
        """Force a host's uplink + downlink up or down (messages in
        flight finish; new sends are dropped while down)."""
        node = self.cluster.network.host(host)
        for link in (node.uplink, node.downlink):
            link.set_up(up)
            if up:
                self._downed_links.discard(link.name)
            else:
                self._downed_links.add(link.name)

    def flap_link(self, host: str, down_ns: int, up_ns: int, count: int = 1) -> Process:
        """Flap a host's links: ``count`` cycles of down for ``down_ns``
        then up for ``up_ns``.  Returns the driving sim process."""
        if down_ns <= 0 or up_ns <= 0:
            raise StorageError("flap periods must be > 0")
        if count < 1:
            raise StorageError(f"flap count must be >= 1, got {count}")

        def _flap():
            for _ in range(count):
                self.set_link(host, False)
                yield self.cluster.env.timeout(down_ns)
                self.set_link(host, True)
                yield self.cluster.env.timeout(up_ns)

        proc = self.cluster.env.process(_flap(), name=f"flap.{host}")
        self._timeline_procs.append(proc)
        return proc

    # -- chaos: scheduled timelines -------------------------------------------

    def schedule(self, timeline: Iterable[tuple[int, Callable[[], None]]],
                 name: str = "chaos.timeline") -> Process:
        """Run a fault *timeline*: ``(at_ns, action)`` pairs applied at
        absolute sim times.  Actions are zero-arg callables (typically
        bound injector methods via ``functools.partial`` / lambdas).
        Returns the driving sim process.
        """
        events = sorted(timeline, key=lambda e: e[0])
        env = self.cluster.env

        def _drive():
            for at_ns, action in events:
                if at_ns < env.now:
                    raise StorageError(
                        f"timeline event at {at_ns} is in the past (now={env.now})"
                    )
                if at_ns > env.now:
                    yield env.timeout(at_ns - env.now)
                action()

        proc = env.process(_drive(), name=name)
        self._timeline_procs.append(proc)
        return proc

    @property
    def active_faults(self) -> int:
        """Number of faults currently injected."""
        n = len(self._original_profiles) + len(self._original_bandwidth)
        n += len(self._downed_links) + len(self.crashed_osds)
        n += len(self.powered_off)
        if self.cluster.fabric.faults is not None:
            n += 1
        return n
