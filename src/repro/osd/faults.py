"""Gray-failure injection: slow devices, degraded links, flaky OSDs.

Enterprise clusters (the paper's deployment context) suffer *gray*
failures — components that respond, just slowly — which inflate tail
latency long before the monitor declares anything down.  This module
injects such faults into a live cluster so their p99 impact, and the
effectiveness of marking the culprit out, can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import StorageError
from .storage import MediaProfile, StorageDevice

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import CephCluster


def _scaled_profile(profile: MediaProfile, factor: float) -> MediaProfile:
    """A media profile slowed down by ``factor``."""
    return MediaProfile(
        name=f"{profile.name}-slow{factor:g}x",
        seq_read_ns=int(profile.seq_read_ns * factor),
        rand_read_ns=int(profile.rand_read_ns * factor),
        seq_write_ns=int(profile.seq_write_ns * factor),
        rand_write_ns=int(profile.rand_write_ns * factor),
        read_bw=profile.read_bw / factor,
        write_bw=profile.write_bw / factor,
        channels=profile.channels,
        readahead_hit_ns=int(profile.readahead_hit_ns * factor),
        jitter_sigma=profile.jitter_sigma,
    )


@dataclass
class FaultInjector:
    """Applies and reverts gray faults on a cluster."""

    cluster: "CephCluster"
    _original_profiles: dict[int, MediaProfile] = field(default_factory=dict)
    _original_bandwidth: dict[str, float] = field(default_factory=dict)

    def slow_device(self, osd_id: int, factor: float) -> None:
        """Multiply one OSD's media latencies by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise StorageError(f"slowdown factor must be >= 1, got {factor}")
        daemon = self.cluster.daemons.get(osd_id)
        if daemon is None:
            raise StorageError(f"unknown osd.{osd_id}")
        device: StorageDevice = daemon.device
        self._original_profiles.setdefault(osd_id, device.profile)
        device.profile = _scaled_profile(self._original_profiles[osd_id], factor)

    def restore_device(self, osd_id: int) -> None:
        """Undo a device slowdown."""
        original = self._original_profiles.pop(osd_id, None)
        if original is None:
            raise StorageError(f"osd.{osd_id} has no injected fault")
        self.cluster.daemons[osd_id].device.profile = original

    def degrade_host_link(self, host: str, factor: float) -> None:
        """Divide a host's up/down link bandwidth by ``factor``."""
        if factor < 1.0:
            raise StorageError(f"degradation factor must be >= 1, got {factor}")
        node = self.cluster.network.host(host)
        for link in (node.uplink, node.downlink):
            self._original_bandwidth.setdefault(link.name, link.bandwidth_bps)
            link.bandwidth_bps = self._original_bandwidth[link.name] / factor

    def restore_host_link(self, host: str) -> None:
        """Undo a link degradation."""
        node = self.cluster.network.host(host)
        restored = False
        for link in (node.uplink, node.downlink):
            original = self._original_bandwidth.pop(link.name, None)
            if original is not None:
                link.bandwidth_bps = original
                restored = True
        if not restored:
            raise StorageError(f"host {host!r} has no injected link fault")

    @property
    def active_faults(self) -> int:
        """Number of faults currently injected."""
        return len(self._original_profiles) + len(self._original_bandwidth)
