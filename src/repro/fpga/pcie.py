"""PCIe Gen3 x16 link model between the host and the U280.

Effective data bandwidth ~15.75 GB/s per direction (128b/130b encoding,
minus TLP overhead ~ 13.7 GB/s usable), with a fixed round-trip latency
for small transactions (doorbells, descriptor fetches).
"""

from __future__ import annotations

from typing import Generator

from ..errors import FpgaError
from ..sim import Environment, Resource
from ..units import transfer_ns

#: Usable payload bandwidth per direction (bytes/sec).
PCIE_GEN3X16_BW = 13.7e9
#: One-way latency of a small TLP (posted write / read completion).
PCIE_TLP_NS = 350
#: Doorbell (4-byte posted write) cost on the host side.
DOORBELL_NS = 120


class PcieLink:
    """Full-duplex PCIe link with per-direction serialization."""

    def __init__(self, env: Environment, bandwidth: float = PCIE_GEN3X16_BW, tlp_ns: int = PCIE_TLP_NS):
        if bandwidth <= 0:
            raise FpgaError(f"PCIe bandwidth must be > 0, got {bandwidth}")
        self.env = env
        self.bandwidth = bandwidth
        self.tlp_ns = tlp_ns
        self._h2c = Resource(env, capacity=1, name="pcie.h2c")
        self._c2h = Resource(env, capacity=1, name="pcie.c2h")
        self.bytes_h2c = 0
        self.bytes_c2h = 0

    def h2c(self, nbytes: int) -> Generator:
        """Process: move ``nbytes`` host -> card."""
        yield from self._transfer(self._h2c, nbytes)
        self.bytes_h2c += nbytes

    def c2h(self, nbytes: int) -> Generator:
        """Process: move ``nbytes`` card -> host."""
        yield from self._transfer(self._c2h, nbytes)
        self.bytes_c2h += nbytes

    def _transfer(self, channel: Resource, nbytes: int) -> Generator:
        if nbytes < 0:
            raise FpgaError(f"negative transfer size {nbytes}")
        ser = transfer_ns(nbytes, self.bandwidth)
        yield from channel.using(ser)
        yield self.env.timeout(self.tlp_ns)

    def doorbell(self) -> Generator:
        """Process: ring a queue doorbell (host-side posted write)."""
        yield self.env.timeout(DOORBELL_NS + self.tlp_ns)
