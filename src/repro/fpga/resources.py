"""FPGA resource vectors and region ledgers.

Tracks LUTs, CLB registers, BRAM tiles, URAMs, and DSPs per region, and
validates that a composed design fits — the accounting behind paper
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResourceOverflowError


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resources."""

    lut: int = 0
    ff: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram + other.bram,
            self.uram + other.uram,
            self.dsp + other.dsp,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut - other.lut,
            self.ff - other.ff,
            self.bram - other.bram,
            self.uram - other.uram,
            self.dsp - other.dsp,
        )

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when every component fits."""
        return (
            self.lut <= capacity.lut
            and self.ff <= capacity.ff
            and self.bram <= capacity.bram
            and self.uram <= capacity.uram
            and self.dsp <= capacity.dsp
        )

    def utilization_of(self, capacity: "ResourceVector") -> dict[str, float]:
        """Percent utilization per component relative to ``capacity``."""
        return {
            "lut": 100.0 * self.lut / capacity.lut if capacity.lut else 0.0,
            "ff": 100.0 * self.ff / capacity.ff if capacity.ff else 0.0,
            "bram": 100.0 * self.bram / capacity.bram if capacity.bram else 0.0,
            "uram": 100.0 * self.uram / capacity.uram if capacity.uram else 0.0,
            "dsp": 100.0 * self.dsp / capacity.dsp if capacity.dsp else 0.0,
        }


class RegionLedger:
    """Allocation bookkeeping for one region (SLR or full device)."""

    def __init__(self, name: str, capacity: ResourceVector):
        self.name = name
        self.capacity = capacity
        self.allocations: dict[str, ResourceVector] = {}

    @property
    def used(self) -> ResourceVector:
        """Sum of current allocations."""
        total = ResourceVector()
        for vec in self.allocations.values():
            total = total + vec
        return total

    @property
    def free(self) -> ResourceVector:
        """Remaining headroom."""
        return self.capacity - self.used

    def allocate(self, module: str, need: ResourceVector) -> None:
        """Reserve resources for ``module`` (raises on overflow)."""
        vec = need
        if module in self.allocations:
            raise ResourceOverflowError(f"module {module!r} already placed in {self.name}")
        if not (self.used + vec).fits_in(self.capacity):
            raise ResourceOverflowError(
                f"{module!r} does not fit in {self.name}: need {vec}, free {self.free}"
            )
        self.allocations[module] = vec

    def release(self, module: str) -> ResourceVector:
        """Free a module's resources."""
        if module not in self.allocations:
            raise ResourceOverflowError(f"module {module!r} not placed in {self.name}")
        return self.allocations.pop(module)

    def utilization(self) -> dict[str, float]:
        """Percent utilization of the region."""
        return self.used.utilization_of(self.capacity)
