"""CMAC: the hard Ethernet MAC block feeding the FPGA TCP stack.

Runs at 260 MHz in DeLiBA-K (paper Section IV-D).  DeLiBA-K drives a
10 GbE SFP interface; the UIFD driver can also use the CMAC alone (no
QDMA) for small-volume paths like network monitoring (Section III-B).
"""

from __future__ import annotations

from typing import Generator

from ..errors import FpgaError
from ..sim import Environment, Resource
from ..units import gbps, transfer_ns
from .device import CMAC_CLOCK_HZ


class Cmac:
    """Ethernet MAC with line-rate serialization per direction."""

    def __init__(self, env: Environment, line_rate_bps: float = gbps(10), clock_hz: float = CMAC_CLOCK_HZ):
        if line_rate_bps <= 0:
            raise FpgaError(f"line rate must be > 0, got {line_rate_bps}")
        self.env = env
        self.line_rate = line_rate_bps  # bytes/sec
        self.clock_hz = clock_hz
        self._tx = Resource(env, capacity=1, name="cmac.tx")
        self._rx = Resource(env, capacity=1, name="cmac.rx")
        self.frames_tx = 0
        self.frames_rx = 0
        self.bytes_tx = 0
        self.bytes_rx = 0

    def _mac_cycles_ns(self, cycles: int = 6) -> int:
        return max(1, int(round(cycles * 1e9 / self.clock_hz)))

    def transmit(self, nbytes: int) -> Generator:
        """Process: clock one frame out of the MAC."""
        if nbytes <= 0:
            raise FpgaError(f"frame size must be > 0, got {nbytes}")
        yield from self._tx.using(self._mac_cycles_ns() + transfer_ns(nbytes, self.line_rate))
        self.frames_tx += 1
        self.bytes_tx += nbytes

    def receive(self, nbytes: int) -> Generator:
        """Process: clock one frame into the MAC."""
        if nbytes <= 0:
            raise FpgaError(f"frame size must be > 0, got {nbytes}")
        yield from self._rx.using(self._mac_cycles_ns() + transfer_ns(nbytes, self.line_rate))
        self.frames_rx += 1
        self.bytes_rx += nbytes
