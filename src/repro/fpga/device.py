"""AMD Alveo U280 device model.

Chip data from paper Section V-c: 1.3 M LUTs, 2.72 M registers, 9,024
DSPs, 2,016 BRAMs, 960 URAMs across three Super Logic Regions (SLRs);
SLR0 (the DFX target) has 355 K LUTs, 725 K registers, 490 BRAM tiles,
320 URAMs, and 2,733 DSPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FpgaError
from ..units import mhz
from .resources import RegionLedger, ResourceVector

#: Full-chip capacity (paper Section V-c).
U280_TOTAL = ResourceVector(lut=1_300_000, ff=2_720_000, bram=2_016, uram=960, dsp=9_024)

#: SLR0 capacity (paper Sections IV-C and V-c).
U280_SLR0 = ResourceVector(lut=355_000, ff=725_000, bram=490, uram=320, dsp=2_733)
#: SLR1/SLR2 split the remainder roughly evenly.
U280_SLR1 = ResourceVector(lut=472_500, ff=997_500, bram=763, uram=320, dsp=3_145)
U280_SLR2 = ResourceVector(lut=472_500, ff=997_500, bram=763, uram=320, dsp=3_146)

#: Clock domains used by the DeLiBA-K design.
ACCEL_CLOCK_HZ = mhz(235)  # replication/EC RTL accelerators
CMAC_CLOCK_HZ = mhz(260)  # Ethernet MAC
QDMA_CLOCK_HZ = mhz(250)  # PCIe user clock


@dataclass(frozen=True)
class SlrInfo:
    """One super logic region."""

    index: int
    capacity: ResourceVector


class AlveoU280:
    """The data-center card: three SLRs with ledgers, plus clock domains.

    The *static region* (QDMA, CMAC, TCP, and the always-present
    accelerators) spans SLR1+SLR2; SLR0 hosts the reconfigurable
    partition (paper Section IV-C).
    """

    def __init__(self):
        self.slrs = [
            SlrInfo(0, U280_SLR0),
            SlrInfo(1, U280_SLR1),
            SlrInfo(2, U280_SLR2),
        ]
        self.ledgers = {
            "slr0": RegionLedger("slr0", U280_SLR0),
            "static": RegionLedger("static", U280_SLR1 + U280_SLR2),
        }
        self.part = "XCU280-L2FSVH2892E"

    def ledger(self, region: str) -> RegionLedger:
        """Region lookup ('slr0' or 'static')."""
        if region not in self.ledgers:
            raise FpgaError(f"unknown region {region!r}; know {sorted(self.ledgers)}")
        return self.ledgers[region]

    def place_static(self, module: str, need: ResourceVector) -> None:
        """Place a module in the static region (SLR1+SLR2)."""
        self.ledger("static").allocate(module, need)

    def total_used(self) -> ResourceVector:
        """Resources used across all regions."""
        return self.ledger("static").used + self.ledger("slr0").used

    def utilization(self) -> dict[str, float]:
        """Percent utilization of the full chip."""
        return self.total_used().utilization_of(U280_TOTAL)
