"""QDMA descriptors and descriptor rings.

A descriptor (128 bytes in DeLiBA-K's configuration, stored per queue in
UltraRAM) defines the five parameters of one DMA operation — source
address, destination address, length, control, and next-descriptor
pointer (paper Section IV-A) — and never carries payload itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..errors import FpgaError

#: Descriptor footprint (paper: "descriptors are 128 bytes in size").
DESCRIPTOR_BYTES = 128
#: Total descriptor memory per queue must stay under 64 kB (paper IV-A).
MAX_DESC_BYTES_PER_QUEUE = 64 * 1024
#: Descriptors per ring (512 x 128 B = 64 kB exactly).
RING_ENTRIES = MAX_DESC_BYTES_PER_QUEUE // DESCRIPTOR_BYTES

_desc_ids = itertools.count(1)


class DescriptorKind(Enum):
    """Which engine consumes the descriptor."""

    H2C = "h2c"
    C2H = "c2h"
    COMPLETION = "cmpt"


@dataclass
class Descriptor:
    """One DMA work item."""

    kind: DescriptorKind
    src_addr: int
    dst_addr: int
    length: int
    control: int = 0
    next_ptr: int = 0
    desc_id: int = field(default_factory=lambda: next(_desc_ids))
    payload: object = None  # simulation-side context (op, request, ...)

    def __post_init__(self):
        if self.length < 0:
            raise FpgaError(f"negative descriptor length {self.length}")


class DescriptorRing:
    """Host-memory ring of descriptors, hardware-consumed in order."""

    def __init__(self, entries: int = RING_ENTRIES):
        if entries < 2 or entries & (entries - 1):
            raise FpgaError(f"ring entries must be a power of two >= 2, got {entries}")
        self.entries = entries
        self._slots: list[Descriptor | None] = [None] * entries
        self.pidx = 0  # producer index (driver)
        self.cidx = 0  # consumer index (hardware)

    def __len__(self) -> int:
        return (self.pidx - self.cidx) % (self.entries * 2)

    @property
    def is_full(self) -> bool:
        """No room for another descriptor."""
        return len(self) == self.entries

    @property
    def is_empty(self) -> bool:
        """Nothing for hardware to fetch."""
        return self.pidx == self.cidx

    def post(self, descriptor: Descriptor) -> None:
        """Driver side: write one descriptor and bump the producer index."""
        if self.is_full:
            raise FpgaError(f"descriptor ring full ({self.entries} entries)")
        self._slots[self.pidx % self.entries] = descriptor
        self.pidx = (self.pidx + 1) % (self.entries * 2)

    def fetch(self, max_count: int) -> list[Descriptor]:
        """Hardware side: consume up to ``max_count`` descriptors in order."""
        out = []
        while not self.is_empty and len(out) < max_count:
            slot = self.cidx % self.entries
            out.append(self._slots[slot])
            self._slots[slot] = None
            self.cidx = (self.cidx + 1) % (self.entries * 2)
        return out

    @property
    def bytes_used(self) -> int:
        """Descriptor memory in flight."""
        return len(self) * DESCRIPTOR_BYTES
