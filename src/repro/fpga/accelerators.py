"""RTL (and legacy HLS) accelerator models for the six offloaded kernels.

Table I of the paper gives, per kernel: software execution time in the
Ceph kernel client, cycle counts of the Verilog implementation, Vivado
latency estimates, measured standalone execution on the physical U280,
and source sizes.  Those numbers are encoded here as
:data:`KERNEL_SPECS` and drive both the cost model (framework offload
latency) and the Table I reproduction bench.

DeLiBA-K's RTL redesign improved on DeLiBA-2's HLS accelerators by
~38.6% in cycles and ~45.7% in latency (Section IV-B); the HLS variants
are derived from the RTL specs with those published factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from ..errors import FpgaError
from ..sim import Environment, Resource
from ..units import cycles_to_ns, us
from .device import ACCEL_CLOCK_HZ
from .resources import ResourceVector


@dataclass(frozen=True)
class AcceleratorSpec:
    """One hardware kernel's published characteristics (Table I + III)."""

    name: str
    #: Profiled software execution time in the Ceph kernel client.
    sw_exec_ns: int
    #: Software contribution to client runtime (Table I column 3).
    sw_runtime_share: float
    #: RTL pipeline cycles (min, max) at the accelerator clock.
    cycles: tuple[int, int]
    #: Vivado-reported latency (min, max) in ns.
    vivado_latency_ns: tuple[int, int]
    #: Measured standalone execution on the physical FPGA (column 6).
    hw_exec_ns: int
    #: Source sizes (column 7-8).
    sloc_c: int
    sloc_verilog: int
    #: Place-and-route footprint (Table III where published).
    resources: ResourceVector = ResourceVector()
    #: Implementation style: 'rtl' (DeLiBA-K) or 'hls' (DeLiBA-2).
    impl: str = "rtl"
    clock_hz: float = ACCEL_CLOCK_HZ

    def compute_ns(self, items: int = 1) -> int:
        """Pipeline time for ``items`` back-to-back inputs.

        First result after ``cycles[1]`` cycles; the pipeline then emits
        one result per cycle (II=1, the point of the RTL redesign).
        """
        if items < 1:
            raise FpgaError(f"items must be >= 1, got {items}")
        total_cycles = self.cycles[1] + (items - 1)
        return cycles_to_ns(total_cycles, self.clock_hz)


#: DeLiBA-2's HLS accelerators: the paper reports the RTL rework bought
#: 38.61% in cycles and 45.71% in latency, so HLS = RTL / (1 - factor).
HLS_CYCLE_FACTOR = 1.0 / (1.0 - 0.3861)
HLS_LATENCY_FACTOR = 1.0 / (1.0 - 0.4571)

# Table I rows (times in ns).
KERNEL_SPECS: dict[str, AcceleratorSpec] = {
    "straw": AcceleratorSpec(
        "straw", us(55), 0.80, (105, 105), (345, 355), us(49), 256, 880,
        ResourceVector(lut=78_555, ff=224_000, bram=190, uram=26, dsp=0),
    ),
    "straw2": AcceleratorSpec(
        "straw2", us(48), 0.80, (155, 155), (315, 315), us(51), 256, 806,
        ResourceVector(lut=82_334, ff=313_000, bram=165, uram=35, dsp=0),
    ),
    "list": AcceleratorSpec(
        "list", us(35), 0.80, (40, 40), (161, 161), us(56), 197, 770,
        ResourceVector(lut=52_335, ff=92_456, bram=85, uram=22, dsp=0),
    ),
    "tree": AcceleratorSpec(
        "tree", us(22), 0.85, (130, 130), (115, 115), us(31), 241, 780,
        ResourceVector(lut=56_551, ff=97_523, bram=82, uram=26, dsp=0),
    ),
    "uniform": AcceleratorSpec(
        "uniform", us(9), 0.72, (40, 50), (180, 180), us(19), 237, 745,
        ResourceVector(lut=62_456, ff=112_000, bram=78, uram=29, dsp=0),
    ),
    "rs_encoder": AcceleratorSpec(
        "rs_encoder", us(65), 0.70, (150, 150), (345, 345), us(85), 280, 960,
        ResourceVector(lut=92_355, ff=582_000, bram=215, uram=52, dsp=0),
    ),
}


def hls_variant(spec: AcceleratorSpec) -> AcceleratorSpec:
    """DeLiBA-2's HLS version of a kernel (derived from published factors)."""
    return replace(
        spec,
        impl="hls",
        cycles=(
            int(round(spec.cycles[0] * HLS_CYCLE_FACTOR)),
            int(round(spec.cycles[1] * HLS_CYCLE_FACTOR)),
        ),
        vivado_latency_ns=(
            int(round(spec.vivado_latency_ns[0] * HLS_LATENCY_FACTOR)),
            int(round(spec.vivado_latency_ns[1] * HLS_LATENCY_FACTOR)),
        ),
    )


def spec_by_name(name: str, impl: str = "rtl") -> AcceleratorSpec:
    """Kernel lookup; ``impl='hls'`` returns the DeLiBA-2 derivative."""
    if name not in KERNEL_SPECS:
        raise FpgaError(f"unknown kernel {name!r}; know {sorted(KERNEL_SPECS)}")
    spec = KERNEL_SPECS[name]
    if impl == "rtl":
        return spec
    if impl == "hls":
        return hls_variant(spec)
    raise FpgaError(f"unknown impl {impl!r} (rtl or hls)")


class Accelerator:
    """A placed, runnable accelerator instance on the card.

    Each instance is a pipelined unit: concurrent requests overlap (one
    result per cycle after fill), modeled with a single-slot issue
    resource held only for the issue interval.
    """

    def __init__(self, env: Environment, spec: AcceleratorSpec):
        self.env = env
        self.spec = spec
        self._issue = Resource(env, capacity=1, name=f"accel:{spec.name}")
        self.invocations = 0
        self.items_processed = 0

    def process(self, items: int = 1) -> Generator:
        """Process: run ``items`` inputs through the pipeline."""
        issue_cycles = items  # II = 1
        issue_ns = cycles_to_ns(issue_cycles, self.spec.clock_hz)
        yield from self._issue.using(issue_ns)
        # Pipeline drain for the last item.
        yield self.env.timeout(cycles_to_ns(self.spec.cycles[1], self.spec.clock_hz))
        self.invocations += 1
        self.items_processed += items
