"""DFX (Dynamic Function eXchange): partial reconfiguration of SLR0.

Paper Section IV-C: DeLiBA-K places its three cluster-shape-specific
replication accelerators (uniform, list, tree buckets) as Reconfigurable
Modules (RMs) inside a single Reconfigurable Partition (RP) in SLR0.
Partial bitstreams are delivered through the MCAP (the PCIe block's
dedicated configuration port), so the accelerator can be swapped live
when the storage cluster's composition changes — without power-cycling
the storage server.

Also implements a ``pr_verify``-style consistency check over the
configurations, mirroring the Vivado utility the authors ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..errors import ReconfigurationError
from ..sim import Environment
from ..units import transfer_ns
from .accelerators import Accelerator, AcceleratorSpec, spec_by_name
from .device import AlveoU280
from .resources import ResourceVector

#: MCAP throughput over PCIe (paper cites XAPP1338 "fast partial
#: reconfiguration over PCI Express"; ~400 MB/s sustained).
MCAP_BW = 400e6
#: Fixed setup/teardown of a reconfiguration (decouple, global reset sync).
RECONFIG_FIXED_NS = 2_000_000  # 2 ms

#: Approximate partial-bitstream bytes per RM: configuration frames scale
#: with the region footprint; an SLR0-quadrant RM is ~25 MB.
DEFAULT_PARTIAL_BITSTREAM = 25 * 1024 * 1024


@dataclass(frozen=True)
class Bitstream:
    """A generated programming file."""

    name: str
    partial: bool
    size_bytes: int
    target_rp: str = ""


@dataclass
class ReconfigurableModule:
    """One RM: a netlist implementable inside an RP."""

    name: str
    spec: AcceleratorSpec
    bitstream: Bitstream
    resources: ResourceVector = field(default_factory=ResourceVector)

    def __post_init__(self):
        if not self.bitstream.partial:
            raise ReconfigurationError(f"RM {self.name!r} needs a partial bitstream")


class ReconfigurablePartition:
    """The RP: a floorplanned Pblock in SLR0 hosting one RM at a time."""

    def __init__(self, device: AlveoU280, name: str = "rp0", region: str = "slr0"):
        self.device = device
        self.name = name
        self.region = region
        self.modules: dict[str, ReconfigurableModule] = {}
        self.active: Optional[str] = None

    @property
    def capacity(self) -> ResourceVector:
        """Resources of the hosting region."""
        return self.device.ledger(self.region).capacity

    def register_module(self, rm: ReconfigurableModule) -> None:
        """Add an RM implementation (checked against the RP footprint)."""
        if rm.name in self.modules:
            raise ReconfigurationError(f"RM {rm.name!r} already registered in {self.name}")
        if not rm.resources.fits_in(self.capacity):
            raise ReconfigurationError(
                f"RM {rm.name!r} does not fit {self.name}: need {rm.resources}"
            )
        self.modules[rm.name] = rm


class DfxController:
    """Loads partial bitstreams through the MCAP."""

    def __init__(self, env: Environment, device: AlveoU280, partition: ReconfigurablePartition):
        self.env = env
        self.device = device
        self.partition = partition
        self.reconfigurations = 0
        self._accelerators: dict[str, Accelerator] = {}

    def active_accelerator(self) -> Accelerator:
        """The currently loaded RM's accelerator instance."""
        if self.partition.active is None:
            raise ReconfigurationError(f"no RM loaded in {self.partition.name}")
        return self._accelerators[self.partition.active]

    def reconfigure(self, rm_name: str) -> Generator:
        """Process: swap the active RM (MCAP transfer + reset sync).

        The rest of the design (static region) keeps running; only the
        RP is decoupled for the duration.
        """
        rm = self.partition.modules.get(rm_name)
        if rm is None:
            raise ReconfigurationError(
                f"unknown RM {rm_name!r}; registered: {sorted(self.partition.modules)}"
            )
        if self.partition.active == rm_name:
            return  # already loaded
        ledger = self.device.ledger(self.partition.region)
        if self.partition.active is not None:
            ledger.release(f"rm:{self.partition.active}")
        yield self.env.timeout(
            RECONFIG_FIXED_NS + transfer_ns(rm.bitstream.size_bytes, MCAP_BW)
        )
        ledger.allocate(f"rm:{rm.name}", rm.resources)
        self.partition.active = rm.name
        self._accelerators.setdefault(rm.name, Accelerator(self.env, rm.spec))
        self.reconfigurations += 1

    def reconfiguration_ns(self, rm_name: str) -> int:
        """Predicted swap time for an RM (without running it)."""
        rm = self.partition.modules.get(rm_name)
        if rm is None:
            raise ReconfigurationError(f"unknown RM {rm_name!r}")
        return RECONFIG_FIXED_NS + transfer_ns(rm.bitstream.size_bytes, MCAP_BW)


def pr_verify(partition: ReconfigurablePartition) -> list[str]:
    """Vivado ``pr_verify``-style checks over all configurations.

    Returns a list of human-readable problems (empty = all good):
    every RM must fit the RP, share the same target region, and have a
    partial (not full) bitstream.
    """
    problems = []
    if not partition.modules:
        problems.append(f"{partition.name}: no reconfigurable modules registered")
    for rm in partition.modules.values():
        if not rm.resources.fits_in(partition.capacity):
            problems.append(f"{rm.name}: exceeds partition capacity")
        if not rm.bitstream.partial:
            problems.append(f"{rm.name}: bitstream is not partial")
        if rm.bitstream.target_rp and rm.bitstream.target_rp != partition.name:
            problems.append(
                f"{rm.name}: bitstream targets {rm.bitstream.target_rp!r}, "
                f"not {partition.name!r}"
            )
    return problems


def build_deliba_k_rms(device: AlveoU280) -> ReconfigurablePartition:
    """The paper's RP: one partition in SLR0 with the three bucket RMs.

    Footprints are the Table III "Partial Reconfiguration Modules" rows.
    """
    rp = ReconfigurablePartition(device, "rp0", "slr0")
    for rm_name, kernel in (("rm1_list", "list"), ("rm2_tree", "tree"), ("rm3_uniform", "uniform")):
        spec = spec_by_name(kernel)
        rp.register_module(
            ReconfigurableModule(
                rm_name,
                spec,
                Bitstream(f"{rm_name}.bit", partial=True, size_bytes=DEFAULT_PARTIAL_BITSTREAM, target_rp="rp0"),
                resources=spec.resources,
            )
        )
    return rp
