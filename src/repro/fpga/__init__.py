"""Simulated Alveo U280 FPGA: QDMA, accelerators, DFX, power, resources.

Models the in-network hardware half of DeLiBA-K (paper Section IV):
descriptor-ring QDMA over PCIe Gen3 x16, the six RTL kernels of Table I,
the CMAC + RTL TCP data plane, DFX partial reconfiguration of SLR0, and
the resource/power accounting behind Table III and Section V-c.
"""

from .accelerators import (
    HLS_CYCLE_FACTOR,
    HLS_LATENCY_FACTOR,
    Accelerator,
    AcceleratorSpec,
    KERNEL_SPECS,
    hls_variant,
    spec_by_name,
)
from .cmac import Cmac
from .descriptors import (
    DESCRIPTOR_BYTES,
    Descriptor,
    DescriptorKind,
    DescriptorRing,
    MAX_DESC_BYTES_PER_QUEUE,
    RING_ENTRIES,
)
from .device import (
    ACCEL_CLOCK_HZ,
    CMAC_CLOCK_HZ,
    QDMA_CLOCK_HZ,
    AlveoU280,
    U280_SLR0,
    U280_TOTAL,
)
from .dfx import (
    Bitstream,
    DfxController,
    ReconfigurableModule,
    ReconfigurablePartition,
    build_deliba_k_rms,
    pr_verify,
)
from .pcie import PCIE_GEN3X16_BW, PcieLink
from .power import (
    INFRA_FOOTPRINTS,
    PAPER_POWER_NO_PR_W,
    PAPER_POWER_WITH_PR_W,
    PowerModel,
    PowerReport,
    full_load_power,
)
from .qdma import (
    H2C_CONCURRENCY,
    MAX_QUEUE_SETS,
    QdmaEngine,
    QueuePurpose,
    QueueSet,
)
from .resources import RegionLedger, ResourceVector
from .xbtest import CardValidator, TestOutcome, ValidationReport, xbutil_examine

__all__ = [
    "ACCEL_CLOCK_HZ",
    "CardValidator",
    "TestOutcome",
    "ValidationReport",
    "xbutil_examine",
    "Accelerator",
    "AcceleratorSpec",
    "AlveoU280",
    "Bitstream",
    "CMAC_CLOCK_HZ",
    "Cmac",
    "DESCRIPTOR_BYTES",
    "Descriptor",
    "DescriptorKind",
    "DescriptorRing",
    "DfxController",
    "H2C_CONCURRENCY",
    "HLS_CYCLE_FACTOR",
    "HLS_LATENCY_FACTOR",
    "INFRA_FOOTPRINTS",
    "KERNEL_SPECS",
    "MAX_DESC_BYTES_PER_QUEUE",
    "MAX_QUEUE_SETS",
    "PAPER_POWER_NO_PR_W",
    "PAPER_POWER_WITH_PR_W",
    "PCIE_GEN3X16_BW",
    "PcieLink",
    "PowerModel",
    "PowerReport",
    "QDMA_CLOCK_HZ",
    "QdmaEngine",
    "QueuePurpose",
    "QueueSet",
    "ReconfigurableModule",
    "ReconfigurablePartition",
    "RegionLedger",
    "ResourceVector",
    "RING_ENTRIES",
    "U280_SLR0",
    "U280_TOTAL",
    "build_deliba_k_rms",
    "full_load_power",
    "hls_variant",
    "pr_verify",
    "spec_by_name",
]
