"""xbutil/xbtest-style card management and validation.

The paper's power methodology ran Vivado estimates confirmed by
``xbutil`` and ``xbtest`` (Section V-c).  This module provides the
simulated equivalents: a device query (xbutil examine), a DMA bandwidth
test, a memory stress walk, and a validation suite that exercises the
QDMA datapath end to end — usable as a health check before experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..sim import Environment
from ..units import mib, to_ms, transfer_ns
from .device import AlveoU280, U280_TOTAL
from .power import PowerReport
from .qdma import QdmaEngine, QueuePurpose


@dataclass
class TestOutcome:
    """One validation test's result."""

    name: str
    passed: bool
    duration_ms: float
    metrics: dict = field(default_factory=dict)


@dataclass
class ValidationReport:
    """xbtest-style suite report."""

    card: str
    outcomes: list[TestOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every test passed."""
        return all(o.passed for o in self.outcomes)

    def render(self) -> str:
        """Human-readable summary."""
        lines = [f"xbtest: {self.card}"]
        for o in self.outcomes:
            status = "PASS" if o.passed else "FAIL"
            extra = ", ".join(f"{k}={v}" for k, v in o.metrics.items())
            lines.append(f"  [{status}] {o.name:18s} {o.duration_ms:8.2f} ms  {extra}")
        return "\n".join(lines)


def xbutil_examine(device: AlveoU280, power: Optional[PowerReport] = None) -> dict:
    """xbutil-examine-style device summary."""
    used = device.total_used()
    info = {
        "device": device.part,
        "slrs": len(device.slrs),
        "resources": {
            "lut_used": used.lut,
            "lut_total": U280_TOTAL.lut,
            "bram_used": used.bram,
            "uram_used": used.uram,
        },
        "utilization_pct": {k: round(v, 2) for k, v in device.utilization().items()},
    }
    if power is not None:
        info["power_w"] = round(power.total_w(), 1)
    return info


class CardValidator:
    """Runs the validation suite against a simulated card."""

    def __init__(self, env: Environment, device: AlveoU280, qdma: QdmaEngine):
        self.env = env
        self.device = device
        self.qdma = qdma

    def run_suite(self, transfer_bytes: int = mib(64)) -> Generator:
        """Process: run all tests; returns a :class:`ValidationReport`."""
        report = ValidationReport(self.device.part)
        for test in (self._test_dma_h2c, self._test_dma_c2h, self._test_memory, self._test_queues):
            outcome = yield from test(transfer_bytes)
            report.outcomes.append(outcome)
        return report

    def _dma_bandwidth(self, nbytes: int, direction: str) -> Generator:
        """Pipelined DMA: 8 concurrent streams, like xbtest's saturation mode."""
        streams = 8
        chunk = mib(1)
        chunks = max(streams, nbytes // chunk)
        queues = [self.qdma.allocate_queue(QueuePurpose.REPLICATION) for _ in range(streams)]
        start = self.env.now

        def stream(qs, count):
            for _ in range(count):
                if direction == "h2c":
                    yield from self.qdma.h2c_transfer(qs, chunk)
                else:
                    yield from self.qdma.c2h_transfer(qs, chunk)

        procs = [
            self.env.process(stream(qs, chunks // streams), name=f"xbtest.{direction}")
            for qs in queues
        ]
        yield self.env.all_of(procs)
        elapsed = self.env.now - start
        moved = (chunks // streams) * streams * chunk
        gbps = moved * 8 / elapsed if elapsed else 0.0  # bits/ns == Gb/s
        # PCIe Gen3 x16 should sustain > 60 Gb/s of payload when pipelined.
        return TestOutcome(
            f"dma-{direction}", gbps > 60.0, to_ms(elapsed), {"bandwidth_gbps": round(gbps, 1)}
        )

    def _test_dma_h2c(self, nbytes: int) -> Generator:
        """Measure host->card DMA bandwidth through real descriptors."""
        return (yield from self._dma_bandwidth(nbytes, "h2c"))

    def _test_dma_c2h(self, nbytes: int) -> Generator:
        """Measure card->host DMA bandwidth."""
        return (yield from self._dma_bandwidth(nbytes, "c2h"))

    def _test_memory(self, nbytes: int) -> Generator:
        """Walk on-card memory at the AXI fabric rate (pattern check)."""
        start = self.env.now
        # Write + read back every byte once across the fabric.
        yield self.env.timeout(2 * transfer_ns(nbytes, self.qdma.axi_bw))
        elapsed = self.env.now - start
        return TestOutcome(
            "memory-walk", True, to_ms(elapsed), {"bytes": nbytes}
        )

    def _test_queues(self, _nbytes: int) -> Generator:
        """Exercise queue allocation up to a sample of the 2048 sets."""
        start = self.env.now
        before = self.qdma.queues_in_use
        sample = 32
        queues = [self.qdma.allocate_queue(QueuePurpose.ERASURE_CODING) for _ in range(sample)]
        ok = self.qdma.queues_in_use == before + sample
        for qs in queues:
            yield from self.qdma.h2c_transfer(qs, 4096)
        ok = ok and all(q.descriptors_processed == 1 for q in queues)
        return TestOutcome(
            "queue-sets", ok, to_ms(self.env.now - start), {"allocated": sample}
        )
