"""Power model of the DeLiBA-K design on the U280.

Reproduces the paper's measurement methodology (Vivado Report Power
estimates confirmed with ``xbutil``/``xbtest``, Section V-c): total power
is board static (HBM, transceivers, controller) plus per-resource
dynamic power at full-load toggle rates.  Two scenarios are published:

* full load, no partial reconfiguration (all accelerators resident):
  ~195 W;
* full load with partial reconfiguration (one bucket RM resident at a
  time): ~170 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .resources import ResourceVector

#: Paper-reported scenario measurements (watts).
PAPER_POWER_NO_PR_W = 195.0
PAPER_POWER_WITH_PR_W = 170.0


@dataclass(frozen=True)
class PowerModel:
    """Per-resource dynamic coefficients at full-load activity."""

    #: Board static power (idle U280 draws ~25-30 W per xbutil).
    board_static_w: float = 28.7
    lut_uw: float = 110.0  # microwatts per active LUT at full load
    ff_uw: float = 38.0
    bram_mw: float = 22.0  # milliwatts per BRAM tile
    uram_mw: float = 42.0
    dsp_mw: float = 1.2
    #: Toggle-rate scaling (1.0 = the full-load calibration point).
    activity: float = 1.0

    def dynamic_w(self, res: ResourceVector) -> float:
        """Dynamic power of one module's footprint."""
        return self.activity * (
            res.lut * self.lut_uw * 1e-6
            + res.ff * self.ff_uw * 1e-6
            + res.bram * self.bram_mw * 1e-3
            + res.uram * self.uram_mw * 1e-3
            + res.dsp * self.dsp_mw * 1e-3
        )

    def total_w(self, modules: Iterable[ResourceVector]) -> float:
        """Board static + dynamic over all resident modules."""
        return self.board_static_w + sum(self.dynamic_w(m) for m in modules)


#: Infrastructure footprints (QDMA IP, RTL TCP/IP, CMAC soft shim) —
#: typical post-route numbers for these blocks on UltraScale+.
INFRA_FOOTPRINTS: dict[str, ResourceVector] = {
    "qdma": ResourceVector(lut=92_000, ff=128_000, bram=210, uram=64, dsp=0),
    "rtl_tcp": ResourceVector(lut=58_000, ff=96_000, bram=180, uram=20, dsp=0),
    "cmac_shim": ResourceVector(lut=11_000, ff=22_000, bram=24, uram=0, dsp=0),
}


def full_load_power(model: PowerModel, accelerator_footprints: Iterable[ResourceVector]) -> float:
    """Watts at full load for a design with the given accelerators resident."""
    modules = list(INFRA_FOOTPRINTS.values()) + list(accelerator_footprints)
    return model.total_w(modules)


class PowerReport:
    """xbutil-style per-module power breakdown."""

    def __init__(self, model: PowerModel):
        self.model = model
        self.modules: dict[str, ResourceVector] = dict(INFRA_FOOTPRINTS)

    def add_module(self, name: str, res: ResourceVector) -> None:
        """Register an accelerator as resident."""
        self.modules[name] = res

    def remove_module(self, name: str) -> None:
        """Drop a module (e.g. an RM swapped out by DFX)."""
        self.modules.pop(name, None)

    def breakdown_w(self) -> dict[str, float]:
        """Per-module dynamic watts plus the static floor."""
        out = {"board_static": self.model.board_static_w}
        for name, res in self.modules.items():
            out[name] = self.model.dynamic_w(res)
        return out

    def total_w(self) -> float:
        """Total card power."""
        return sum(self.breakdown_w().values())
