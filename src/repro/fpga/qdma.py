"""QDMA (multi-queue DMA) engine model.

Implements the five modules of the paper's customized QDMA IP (Section
IV-A): Requester Request (RQ), Descriptor Engine (DE), Host-to-Card
(H2C), Card-to-Host (C2H), and Completion Engine (CE).  Up to 2,048
queue sets are supported, each a triple of rings (H2C descriptor ring,
C2H descriptor ring, C2H completion ring) individually typed for
replication or erasure-coding traffic, and assignable to PCIe physical
or virtual functions (SR-IOV) for multi-tenant use.

The data path streams over AXI at the configured bus width (256 bits
initially in DeLiBA-K, 512 bits provisioned; paper Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generator

from ..errors import FpgaError
from ..sim import NULL_METRICS, Environment, Resource
from ..units import transfer_ns
from .descriptors import DESCRIPTOR_BYTES, Descriptor, DescriptorKind, DescriptorRing
from .device import QDMA_CLOCK_HZ
from .pcie import PcieLink

#: Maximum queue sets (paper: "supports up to 2048 queue sets").
MAX_QUEUE_SETS = 2048
#: Concurrent I/Os the H2C engine sustains (paper: 256, 32 kB reorder buffer).
H2C_CONCURRENCY = 256
H2C_REORDER_BYTES = 32 * 1024
#: Cycles of engine work per descriptor.
DESC_PROC_CYCLES = 12
#: Completion entry written back to the host.
CMPT_BYTES = 16
#: Packet length limits (paper Section IV-B).
MIN_PACKET = 64
MAX_PACKET_STANDARD = 1518
MAX_PACKET_JUMBO = 9018


class QueuePurpose(Enum):
    """Traffic class a queue set is configured for."""

    REPLICATION = "replication"
    ERASURE_CODING = "erasure_coding"


@dataclass
class QueueSet:
    """One of the 2,048 queue sets: three rings + function binding."""

    qid: int
    purpose: QueuePurpose
    function: int = 0  # 0 = PF, >0 = SR-IOV VF number
    h2c_ring: DescriptorRing = field(default_factory=DescriptorRing)
    c2h_ring: DescriptorRing = field(default_factory=DescriptorRing)
    cmpt_ring: DescriptorRing = field(default_factory=DescriptorRing)
    descriptors_processed: int = 0
    bytes_moved: int = 0


class QdmaEngine:
    """The QDMA core shared by all queue sets on one card."""

    def __init__(
        self,
        env: Environment,
        pcie: PcieLink,
        data_bus_bits: int = 256,
        clock_hz: float = QDMA_CLOCK_HZ,
        metrics=None,
    ):
        if data_bus_bits not in (256, 512):
            raise FpgaError(f"data bus must be 256 or 512 bits, got {data_bus_bits}")
        self.env = env
        self.pcie = pcie
        self.data_bus_bits = data_bus_bits
        self.clock_hz = clock_hz
        #: AXI-stream bandwidth on the card: bus_bytes per cycle.
        self.axi_bw = (data_bus_bits / 8) * clock_hz
        self._queues: dict[int, QueueSet] = {}
        self._next_qid = 0
        self._h2c_engine = Resource(env, capacity=H2C_CONCURRENCY, name="qdma.h2c")
        self._c2h_engine = Resource(env, capacity=H2C_CONCURRENCY, name="qdma.c2h")
        self._desc_engine = Resource(env, capacity=4, name="qdma.de")
        self.completions_posted = 0
        metrics = metrics or NULL_METRICS
        self._m_h2c_bytes = metrics.counter("fpga.qdma.h2c_bytes")
        self._m_c2h_bytes = metrics.counter("fpga.qdma.c2h_bytes")
        self._m_descriptors = metrics.counter("fpga.qdma.descriptors")
        self._m_completions = metrics.counter("fpga.qdma.completions")
        self._m_queues = metrics.gauge("fpga.qdma.queues_in_use")

    # -- queue management --------------------------------------------------------

    def allocate_queue(self, purpose: QueuePurpose, function: int = 0) -> QueueSet:
        """Claim a queue set (raises once all 2,048 are allocated)."""
        if len(self._queues) >= MAX_QUEUE_SETS:
            raise FpgaError(f"all {MAX_QUEUE_SETS} queue sets allocated")
        if function < 0:
            raise FpgaError(f"invalid function number {function}")
        qid = self._next_qid
        self._next_qid += 1
        qs = QueueSet(qid, purpose, function)
        self._queues[qid] = qs
        self._m_queues.set(len(self._queues))
        return qs

    def queue(self, qid: int) -> QueueSet:
        """Lookup."""
        if qid not in self._queues:
            raise FpgaError(f"unknown queue set {qid}")
        return self._queues[qid]

    @property
    def queues_in_use(self) -> int:
        """Allocated queue sets."""
        return len(self._queues)

    def queues_of_function(self, function: int) -> list[QueueSet]:
        """All queue sets bound to one PF/VF (SR-IOV tenant view)."""
        return [q for q in self._queues.values() if q.function == function]

    # -- engine cost helpers ---------------------------------------------------------

    def _engine_cycles_ns(self, cycles: int) -> int:
        return max(1, int(round(cycles * 1e9 / self.clock_hz)))

    def _axi_ns(self, nbytes: int) -> int:
        return transfer_ns(nbytes, self.axi_bw)

    # -- datapath operations -----------------------------------------------------------

    def h2c_transfer(self, qs: QueueSet, nbytes: int) -> Generator:
        """Process: move ``nbytes`` of payload host -> card via ``qs``.

        Full descriptor lifecycle: driver posts the descriptor + doorbell,
        the Descriptor Engine fetches it over PCIe, the H2C engine DMAs
        the payload and streams it onto the card AXI fabric.
        """
        if nbytes <= 0:
            raise FpgaError(f"transfer size must be > 0, got {nbytes}")
        desc = Descriptor(DescriptorKind.H2C, src_addr=0, dst_addr=0, length=nbytes)
        qs.h2c_ring.post(desc)
        yield from self.pcie.doorbell()
        # DE fetches the descriptor from host memory.
        yield from self._desc_engine.using(self._engine_cycles_ns(DESC_PROC_CYCLES))
        yield from self.pcie.h2c(DESCRIPTOR_BYTES)
        qs.h2c_ring.fetch(1)
        # H2C engine DMAs the payload and streams it out.
        req = self._h2c_engine.request()
        yield req
        try:
            yield from self.pcie.h2c(nbytes)
            yield self.env.timeout(self._axi_ns(nbytes))
        finally:
            self._h2c_engine.release(req)
        qs.descriptors_processed += 1
        qs.bytes_moved += nbytes
        self._m_descriptors.add()
        self._m_h2c_bytes.add(nbytes)

    def c2h_transfer(self, qs: QueueSet, nbytes: int) -> Generator:
        """Process: move ``nbytes`` card -> host and post a completion."""
        if nbytes <= 0:
            raise FpgaError(f"transfer size must be > 0, got {nbytes}")
        desc = Descriptor(DescriptorKind.C2H, src_addr=0, dst_addr=0, length=nbytes)
        qs.c2h_ring.post(desc)
        yield from self._desc_engine.using(self._engine_cycles_ns(DESC_PROC_CYCLES))
        req = self._c2h_engine.request()
        yield req
        try:
            yield self.env.timeout(self._axi_ns(nbytes))
            yield from self.pcie.c2h(nbytes)
        finally:
            self._c2h_engine.release(req)
        qs.c2h_ring.fetch(1)
        yield from self.post_completion(qs)
        qs.descriptors_processed += 1
        qs.bytes_moved += nbytes
        self._m_descriptors.add()
        self._m_c2h_bytes.add(nbytes)

    def post_completion(self, qs: QueueSet) -> Generator:
        """Process: CE writes a completion entry back to host memory."""
        cmpt = Descriptor(DescriptorKind.COMPLETION, 0, 0, CMPT_BYTES)
        qs.cmpt_ring.post(cmpt)
        yield from self.pcie.c2h(CMPT_BYTES)
        qs.cmpt_ring.fetch(1)
        self.completions_posted += 1
        self._m_completions.add()

    @staticmethod
    def validate_packet(nbytes: int, jumbo: bool = False) -> None:
        """Enforce the configured min/max packet length."""
        limit = MAX_PACKET_JUMBO if jumbo else MAX_PACKET_STANDARD
        if nbytes < MIN_PACKET:
            raise FpgaError(f"packet {nbytes} B below minimum {MIN_PACKET} B")
        if nbytes > limit:
            raise FpgaError(f"packet {nbytes} B above maximum {limit} B")
