"""The multi-queue block layer (blk-mq) and the DeLiBA-K DMQ variant.

Structure mirrors Linux (paper Figure 1): per-CPU *software contexts*
(ctx) feed *hardware contexts* (hctx), each with a bounded tag set that
matches a driver hardware queue.  Submission runs on the issuing CPU
core; dispatch pulls from the elevator while tags are free and pushes to
the driver; completion frees the tag and re-drains.

**DMQ** (DeLiBA-K's modified layer, paper Section III-B) is the same
machinery configured with: elevator bypass (``none`` + zero-cost plug),
one hctx per CPU so an io_uring instance pinned to core N owns hctx N
exclusively, and a smaller fixed submit cost (no shared-state locking).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..errors import BlockLayerError
from ..host import HostKernel
from ..host.cpu import CpuCore
from ..sim import NULL_METRICS, Environment, Semaphore
from .bio import Bio, Request
from .scheduler import scheduler_factory

#: Driver interface: queue_rq(request) -> None.  The driver must fire
#: ``request.completion`` (created by the block layer) when done.
QueueRq = Callable[[Request], None]


@dataclass(frozen=True)
class BlkMqConfig:
    """Shape and cost parameters of one block-layer instance."""

    num_hw_queues: int = 4
    tags_per_queue: int = 256
    #: Fixed CPU per bio through submit (bio alloc, ctx lock, accounting).
    submit_cost_ns: int = 900
    #: CPU on the completion path (softirq, bio_endio).
    complete_cost_ns: int = 600
    scheduler: str = "mq-deadline"
    #: Attempt back-merging of contiguous bios in the plug list.
    merge_enabled: bool = True
    #: Map each submitting core to hctx (core_id % num_hw_queues) when
    #: True; a shared round-robin otherwise.
    per_core_mapping: bool = True


#: DeLiBA-K's DMQ: scheduler bypass + per-core queues + slim submit path.
DMQ_CONFIG = BlkMqConfig(
    num_hw_queues=28,
    tags_per_queue=2048,
    submit_cost_ns=350,
    complete_cost_ns=250,
    scheduler="none",
    merge_enabled=False,
    per_core_mapping=True,
)


class HardwareContext:
    """One hctx: elevator + tag set + dispatch into the driver."""

    def __init__(
        self,
        env: Environment,
        index: int,
        config: BlkMqConfig,
        queue_rq: QueueRq,
        tracer=None,
        metrics=None,
    ):
        self.env = env
        self.tracer = tracer
        self.index = index
        self.config = config
        self.scheduler = scheduler_factory(config.scheduler)
        self.tags = Semaphore(env, config.tags_per_queue, name=f"hctx{index}.tags")
        self.queue_rq = queue_rq
        self.dispatched = 0
        self._draining = False
        metrics = metrics or NULL_METRICS
        self._m_dispatched = metrics.counter(f"blk.hwq{index}.dispatched")
        self._m_req_errors = metrics.counter("blk.request_errors")
        #: In-flight request count (tags in use) over time.
        self.depth_series = metrics.timeseries(f"blk.hwq{index}.depth")

    def insert(self, request: Request) -> None:
        """Insert into the elevator and kick the dispatch drain."""
        self.scheduler.insert(request, self.env.now)
        self.kick()

    def kick(self) -> None:
        """Start a drain pass unless one is already running."""
        if not self._draining:
            self.env.process(self._drain(), name=f"hctx{self.index}.drain")

    def _drain(self) -> Generator:
        if self._draining:
            return
        self._draining = True
        try:
            while len(self.scheduler) and self.tags.tokens > 0:
                yield self.tags.acquire()
                request = self.scheduler.next_request(self.env.now)
                if request is None:
                    self.tags.release()
                    break
                request.dispatched_at = self.env.now
                self.dispatched += 1
                self._m_dispatched.add()
                self.depth_series.record(self.env.now, self.config.tags_per_queue - self.tags.tokens)
                if self.tracer is not None and request.submitted_at >= 0:
                    self.tracer.record(request.req_id, "dmq", request.submitted_at, self.env.now)
                    span = getattr(request, "_obs_span", None)
                    if span is not None:
                        span.record(
                            "dmq", "queue", request.submitted_at, self.env.now, hctx=self.index
                        )
                self.queue_rq(request)
                self._arm_tag_release(request)
        finally:
            self._draining = False

    def _arm_tag_release(self, request: Request) -> None:
        completion = request.completion
        if completion is None:
            raise BlockLayerError(f"request {request.req_id} dispatched without completion event")
        if completion.processed:
            self._on_complete(request)
        else:
            completion.callbacks.append(lambda _ev: self._on_complete(request))

    def _on_complete(self, request: Request) -> None:
        self.tags.release()
        self.depth_series.record(self.env.now, self.config.tags_per_queue - self.tags.tokens)
        failed = bool(request.status or request.error)
        if failed:
            self._m_req_errors.add()
        span = getattr(request, "_obs_span", None)
        if span is not None:
            # Close the tree at driver completion; the API engine's
            # reaper may extend it to CQE delivery afterwards.
            span.finish(ok=not failed)
        # Freed capacity may unblock queued work.
        self.kick()


class BlockLayer:
    """blk-mq entry point used by the API engines."""

    def __init__(
        self,
        env: Environment,
        kernel: HostKernel,
        queue_rq: QueueRq,
        config: Optional[BlkMqConfig] = None,
        tracer=None,
        metrics=None,
    ):
        self.env = env
        self.kernel = kernel
        #: Optional repro.trace.Tracer recording lifecycle spans.
        self.tracer = tracer
        #: MetricsRegistry shared by the whole stack (no-op by default).
        self.metrics = metrics or NULL_METRICS
        #: Set by ``repro.obs.health.HealthLayer.attach``: client-side
        #: completion accounting shared by every engine over this layer
        #: (numjobs > 1 builds extra engines, one block layer).
        self.health = None
        self.config = config or BlkMqConfig()
        if self.config.num_hw_queues < 1:
            raise BlockLayerError("need at least one hardware queue")
        self.hctxs = [
            HardwareContext(env, i, self.config, queue_rq, tracer=tracer, metrics=self.metrics)
            for i in range(self.config.num_hw_queues)
        ]
        self._rr = 0
        self.bios_submitted = 0
        self.merges = 0
        self._m_bios = self.metrics.counter("blk.bios_submitted")
        self._m_merges = self.metrics.counter("blk.merges")
        #: Per-core plug lists: core_id -> {op value -> last request}, so
        #: flush_plug touches only the flushing core's entries.
        self._plug: dict[int, dict[str, Request]] = {}
        #: Per-layer request ids (deterministic across runs in a process).
        self._req_ids = itertools.count(1)
        #: core_id -> hctx memo (valid only under per_core_mapping).
        self._hctx_cache: dict[int, HardwareContext] = {}
        #: Submit cost is uniform: every hctx runs the same scheduler type.
        self._submit_cost_ns = (
            self.config.submit_cost_ns + self.hctxs[0].scheduler.insert_cost_ns
        )

    def _hctx_for(self, core: CpuCore) -> HardwareContext:
        if self.config.per_core_mapping:
            hctx = self._hctx_cache.get(core.core_id)
            if hctx is None:
                hctx = self.hctxs[core.core_id % len(self.hctxs)]
                self._hctx_cache[core.core_id] = hctx
            return hctx
        hctx = self.hctxs[self._rr % len(self.hctxs)]
        self._rr += 1
        return hctx

    def _plug_for(self, core_id: int) -> dict[str, Request]:
        plugged = self._plug.get(core_id)
        if plugged is None:
            plugged = self._plug[core_id] = {}
        return plugged

    def submit_bio(self, core: CpuCore, bio: Bio) -> Generator:
        """Process: push one bio through submit; returns the request.

        With merging enabled, the request parks in the per-core *plug
        list* (as in Linux) so immediately following contiguous bios can
        back-merge; callers must ``flush_plug`` when they stop submitting
        (the engines flush where a real task would ``io_schedule``).

        The returned request's ``completion`` event is created here and
        fired by the driver; the caller decides how to wait (interrupt
        vs. poll), so completion-path CPU is charged by the waiter.
        """
        self.bios_submitted += 1
        self._m_bios.add()
        config = self.config
        if config.per_core_mapping and config.merge_enabled:
            # Merged-bio fast path: with per-core mapping the hctx is a
            # pure function of the core (no shared round-robin cursor to
            # advance), so a plug hit needs no hctx lookup at all.
            yield from core.run(self._submit_cost_ns)
            plugged = self._plug_for(core.core_id)
            last = plugged.get(bio.op.value)
            if last is not None and last.dispatched_at < 0 and last.can_merge(bio):
                last.merge(bio)
                self.merges += 1
                self._m_merges.add()
                span = getattr(last, "_obs_span", None)
                if span is not None:
                    span.meta["merged_bios"] = span.meta.get("merged_bios", 0) + 1
                return last
            if last is not None:
                self._hctx_for(core).insert(last)  # evict the plugged request
            request = self._new_request(bio)
            self._record_rings(bio, request)
            plugged[bio.op.value] = request
            return request
        hctx = self._hctx_for(core)
        yield from core.run(config.submit_cost_ns + hctx.scheduler.insert_cost_ns)
        if not config.merge_enabled:
            request = self._new_request(bio)
            self._record_rings(bio, request)
            hctx.insert(request)
            return request
        plugged = self._plug_for(core.core_id)
        last = plugged.get(bio.op.value)
        if last is not None and last.dispatched_at < 0 and last.can_merge(bio):
            last.merge(bio)
            self.merges += 1
            self._m_merges.add()
            return last
        if last is not None:
            hctx.insert(last)  # evict the previous plugged request
        request = self._new_request(bio)
        self._record_rings(bio, request)
        plugged[bio.op.value] = request
        return request

    def _new_request(self, bio: Bio) -> Request:
        # Ids come from the per-layer counter, not the module-global one:
        # every run numbers its requests from 1, so traced span streams
        # are identical across seeded runs within one process.
        request = Request([bio], req_id=next(self._req_ids))
        request.submitted_at = self.env.now
        request.completion = self.env.event()
        tracer = self.tracer
        if tracer is not None and bio.tenant:
            tracer.tag_request(request.req_id, bio.tenant)
        if tracer is not None and tracer.causal:
            # Adopt the root opened at SQE prep; engines that do not
            # pre-stamp one (sync/libaio paths) get it rooted here.
            root = getattr(bio, "_obs_root", None)
            if root is None:
                root = tracer.start_root(bio.op.value, size=bio.size)
                bio._obs_root = root
            root.annotate(req_id=request.req_id)
            if bio.tenant:
                root.annotate(tenant=bio.tenant)
            request._obs_span = root
        return request

    def _record_rings(self, bio: Bio, request: Request) -> None:
        """Attribute the time between SQE prep and block-layer entry to
        the io_uring 'rings' stage (stamped by the API engine)."""
        t0 = getattr(bio, "_trace_t0", None)
        if self.tracer is not None and t0 is not None:
            self.tracer.record(request.req_id, "rings", t0, request.submitted_at)
            span = getattr(request, "_obs_span", None)
            if span is not None:
                span.record("rings", "stage", t0, request.submitted_at)

    def flush_plug(self, core: CpuCore) -> None:
        """Push the core's plugged requests into their hardware queues.

        Engines call this where a real task would block (io_schedule) or
        finish a submission batch.
        """
        plugged = self._plug.get(core.core_id)
        if not plugged:
            return
        for op in list(plugged):
            request = plugged.pop(op)
            # One _hctx_for call per flushed request, matching the submit
            # path (in round-robin mode the call advances the cursor).
            self._hctx_for(core).insert(request)

    def total_dispatched(self) -> int:
        """Requests handed to the driver so far."""
        return sum(h.dispatched for h in self.hctxs)

    def queue_depth_summary(self, end_ns: Optional[int] = None) -> dict[str, float]:
        """Time-weighted mean in-flight depth per active hardware queue.

        The window is closed at ``end_ns`` (default: the current clock)
        so the final depth sample carries its real weight.
        """
        end = self.env.now if end_ns is None else end_ns
        return {
            f"hwq{h.index}": h.depth_series.time_weighted_mean(end)
            for h in self.hctxs
            if h.depth_series.times
        }