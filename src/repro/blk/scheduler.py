"""Block I/O schedulers (elevators) for the multi-queue block layer.

Two elevators are modeled:

* :class:`NoneScheduler` — pass-through FIFO (``none``), what DeLiBA-K's
  DMQ effectively selects by bypassing the elevator entirely;
* :class:`MqDeadlineScheduler` — Linux ``mq-deadline``: reads are
  preferred over writes until writes starve, and each request carries a
  deadline that forces dispatch when expired.

Scheduler CPU cost per request is charged by the block layer using the
``insert_cost_ns``/``dispatch_cost_ns`` attributes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..errors import BlockLayerError
from ..units import ms
from .bio import IoOp, Request


class NoneScheduler:
    """FIFO pass-through (no elevator)."""

    #: CPU charged on insert/dispatch — near zero for the bypass path.
    insert_cost_ns = 100
    dispatch_cost_ns = 100

    def __init__(self):
        self._fifo: deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._fifo)

    def insert(self, request: Request, now: int) -> None:
        """Queue a request."""
        self._fifo.append(request)

    def next_request(self, now: int) -> Optional[Request]:
        """Pop the next request to dispatch (None when empty)."""
        return self._fifo.popleft() if self._fifo else None


class MqDeadlineScheduler:
    """Simplified Linux mq-deadline.

    Reads dispatch before writes unless ``writes_starved`` consecutive
    read batches have already skipped writes; expired deadlines override
    the direction preference.
    """

    insert_cost_ns = 700
    dispatch_cost_ns = 500

    def __init__(
        self,
        read_expire_ns: int = ms(0.5),
        write_expire_ns: int = ms(5),
        writes_starved: int = 2,
    ):
        if read_expire_ns <= 0 or write_expire_ns <= 0:
            raise BlockLayerError("deadline expiries must be positive")
        self.read_expire_ns = read_expire_ns
        self.write_expire_ns = write_expire_ns
        self.writes_starved = writes_starved
        self._fifo: dict[IoOp, deque[tuple[int, Request]]] = {
            IoOp.READ: deque(),
            IoOp.WRITE: deque(),
        }
        self._starved = 0

    def __len__(self) -> int:
        return len(self._fifo[IoOp.READ]) + len(self._fifo[IoOp.WRITE])

    def insert(self, request: Request, now: int) -> None:
        """Queue with a per-direction deadline."""
        expire = self.read_expire_ns if request.op == IoOp.READ else self.write_expire_ns
        self._fifo[request.op].append((now + expire, request))

    def _expired_head(self, op: IoOp, now: int) -> bool:
        q = self._fifo[op]
        return bool(q) and q[0][0] <= now

    def next_request(self, now: int) -> Optional[Request]:
        """Deadline-aware pop."""
        reads, writes = self._fifo[IoOp.READ], self._fifo[IoOp.WRITE]
        if not reads and not writes:
            return None
        # Expired writes dispatch first (they've waited 10x longer by policy).
        if self._expired_head(IoOp.WRITE, now):
            self._starved = 0
            return writes.popleft()[1]
        if self._expired_head(IoOp.READ, now):
            return reads.popleft()[1]
        # Direction preference: reads, unless writes are starving.
        if reads and (not writes or self._starved < self.writes_starved):
            self._starved += 1 if writes else 0
            return reads.popleft()[1]
        self._starved = 0
        if writes:
            return writes.popleft()[1]
        return reads.popleft()[1]


def scheduler_factory(name: str):
    """Build a scheduler by its Linux name ('none' or 'mq-deadline')."""
    if name == "none":
        return NoneScheduler()
    if name == "mq-deadline":
        return MqDeadlineScheduler()
    raise BlockLayerError(f"unknown scheduler {name!r}")
