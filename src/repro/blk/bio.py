"""Block-layer I/O units: bios and requests.

A :class:`Bio` is one contiguous block I/O as issued by an API engine; a
:class:`Request` is what the block layer hands to a driver — one or more
merged bios.  Sectors are 512 bytes, as in Linux.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..errors import BlockLayerError
from ..status import BlkStatus

SECTOR = 512

_req_ids = itertools.count(1)


class IoOp(Enum):
    """Direction of a block I/O."""

    READ = "read"
    WRITE = "write"


@dataclass
class Bio:
    """One contiguous block I/O."""

    op: IoOp
    sector: int
    size: int  # bytes
    data: Optional[bytes] = None
    #: Access-pattern hint propagated to the media model.
    sequential: bool = False
    #: Tenant identity for multi-tenant QoS; "" = untagged.  Travels
    #: down the whole stack (request -> driver -> RADOS op) so the OSD
    #: scheduler can attribute the IO.
    tenant: str = ""

    def __post_init__(self):
        if self.sector < 0:
            raise BlockLayerError(f"negative sector {self.sector}")
        if self.size <= 0 or self.size % SECTOR:
            raise BlockLayerError(f"bio size must be a positive sector multiple, got {self.size}")
        if self.op == IoOp.WRITE and self.data is not None and len(self.data) != self.size:
            raise BlockLayerError(f"data length {len(self.data)} != bio size {self.size}")

    @property
    def end_sector(self) -> int:
        """First sector after this bio."""
        return self.sector + self.size // SECTOR

    @property
    def offset(self) -> int:
        """Byte offset on the device."""
        return self.sector * SECTOR


@dataclass
class Request:
    """A (possibly merged) request queued to a driver."""

    bios: list[Bio]
    req_id: int = field(default_factory=lambda: next(_req_ids))
    submitted_at: int = -1
    dispatched_at: int = -1
    completed_at: int = -1
    error: str = ""
    #: Request-wide status set by the driver on completion (BLK_STS_*).
    status: BlkStatus = BlkStatus.OK
    #: Per-bio statuses, parallel to ``bios``; empty means every bio
    #: shares the request-wide ``status`` (the common, fault-free case).
    bio_statuses: list = field(default_factory=list)
    #: Completion event, created by the block layer at submit time and
    #: fired by the driver (value = the request itself).
    completion: Optional[object] = None

    def __post_init__(self):
        if not self.bios:
            raise BlockLayerError("request needs at least one bio")
        first = self.bios[0]
        if any(b.op != first.op for b in self.bios):
            raise BlockLayerError("cannot mix read and write bios in one request")

    def fail(self, status: BlkStatus, error: str = "") -> None:
        """Mark the whole request failed (every bio inherits ``status``)."""
        self.status = status
        if error and not self.error:
            self.error = error

    def fail_bio(self, index: int, status: BlkStatus) -> None:
        """Mark one merged bio failed (partial-failure completion).

        The request-wide status becomes the worst per-bio status, so
        callers that only look at ``request.status`` still see a failure.
        """
        if not self.bio_statuses:
            self.bio_statuses = [BlkStatus.OK] * len(self.bios)
        self.bio_statuses[index] = self.bio_statuses[index].combine(status)
        self.status = self.status.combine(status)

    def fail_extents(self, extent_errors) -> None:
        """Map failed device byte extents onto the bios they overlap.

        ``extent_errors`` is an iterable of ``(offset, length, status,
        message)``; bios outside every failed extent stay OK — the
        partial-failure semantics of a merged multi-bio request.
        """
        for offset, length, status, message in extent_errors:
            end = offset + length
            hit = False
            for i, b in enumerate(self.bios):
                if b.offset < end and offset < b.offset + b.size:
                    self.fail_bio(i, status)
                    hit = True
            if not hit:
                # Extent maps to no bio (shouldn't happen): fail globally
                # rather than swallow the error.
                self.fail(status)
            if message and not self.error:
                self.error = message

    def fail_from_exc(self, exc: Exception) -> None:
        """Map a storage exception onto this request (driver completion).

        Honors ``exc.status`` and per-extent ``exc.extent_errors`` when
        present (duck-typed so the block layer needs no osd imports).
        """
        extents = getattr(exc, "extent_errors", ())
        if extents:
            self.fail_extents(extents)
            if not self.error:
                self.error = str(exc)
        else:
            self.fail(getattr(exc, "status", BlkStatus.IOERR), str(exc))

    def status_for(self, bio: Bio) -> BlkStatus:
        """Completion status of one merged bio (identity lookup).

        Bios are mutable (unhashable), so this scans by identity — merged
        requests hold only a handful of bios.
        """
        if self.bio_statuses:
            for i, b in enumerate(self.bios):
                if b is bio:
                    return self.bio_statuses[i]
        return self.status

    @property
    def op(self) -> IoOp:
        """Direction (uniform across merged bios)."""
        return self.bios[0].op

    @property
    def tenant(self) -> str:
        """Tenant identity (uniform across merged bios — enforced by
        :meth:`can_merge`)."""
        return self.bios[0].tenant

    @property
    def sector(self) -> int:
        """Starting sector."""
        return self.bios[0].sector

    @property
    def size(self) -> int:
        """Total bytes."""
        return sum(b.size for b in self.bios)

    @property
    def sequential(self) -> bool:
        """Pattern hint for the whole request.

        True when the head bio advertises a sequential stream, or when
        merging built an LBA-contiguous multi-bio run — a random-write
        burst that happened to land back-to-back *is* sequential at the
        device, whatever each bio's own hint said.  (Reporting only the
        head bio's hint starved the drivers' striping heuristics and the
        cache tier's sequential cutoff of real merge information.)
        """
        bios = self.bios
        if bios[0].sequential or len(bios) == 1:
            return bios[0].sequential
        return all(
            bios[i].end_sector == bios[i + 1].sector for i in range(len(bios) - 1)
        )

    def data(self) -> Optional[bytes]:
        """Concatenated write payload (None for reads or absent data)."""
        if self.op == IoOp.READ:
            return None
        parts = [b.data for b in self.bios]
        if any(p is None for p in parts):
            return None
        return b"".join(parts)

    def can_merge(self, bio: Bio) -> bool:
        """Back-merge test: same op, same tenant, physically contiguous.

        Cross-tenant merging would let one tenant's bytes ride another's
        QoS identity, corrupting per-tenant accounting at the OSD."""
        return (
            bio.op == self.op
            and bio.tenant == self.bios[0].tenant
            and self.bios[-1].end_sector == bio.sector
        )

    def merge(self, bio: Bio) -> None:
        """Append a contiguous bio (caller must check :meth:`can_merge`)."""
        if not self.can_merge(bio):
            raise BlockLayerError(
                f"cannot merge bio at sector {bio.sector} into request ending at "
                f"{self.bios[-1].end_sector}"
            )
        self.bios.append(bio)
