"""Linux block layer model: bios, requests, elevators, blk-mq, and DMQ.

DMQ is DeLiBA-K's modified multi-queue layer: elevator bypass, per-core
hardware queues, and a slim submit path (paper Section III-B).
"""

from ..status import BlkStatus, worst_status
from .bio import SECTOR, Bio, IoOp, Request
from .blk_mq import DMQ_CONFIG, BlkMqConfig, BlockLayer, HardwareContext
from .scheduler import MqDeadlineScheduler, NoneScheduler, scheduler_factory

__all__ = [
    "Bio",
    "BlkMqConfig",
    "BlkStatus",
    "BlockLayer",
    "DMQ_CONFIG",
    "HardwareContext",
    "IoOp",
    "MqDeadlineScheduler",
    "NoneScheduler",
    "Request",
    "SECTOR",
    "scheduler_factory",
    "worst_status",
]
