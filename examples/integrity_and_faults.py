#!/usr/bin/env python
"""Operating the cluster: scrub-and-repair plus gray-failure handling.

Two enterprise scenarios on the simulated cluster:

1. **Silent corruption**: a replica rots on disk; a light scrub misses it
   (same size), a deep scrub catches the checksum divergence and repairs
   from the majority copy.
2. **Gray failure**: one OSD's drive becomes 50x slower without dying.
   Tail latency explodes while the mean barely moves; marking the OSD
   out lets CRUSH route around it and the tail recovers.

Run:  python examples/integrity_and_faults.py
"""

from repro.deliba import DELIBAK, build_framework
from repro.osd import FaultInjector, Scrubber
from repro.units import kib, mib
from repro.workloads import FioJob


def main() -> None:
    # --- scenario 1: silent corruption ------------------------------------
    fw = build_framework(DELIBAK, pool_spec=None)
    cluster, client, pool = fw.cluster, fw.image.client, fw.pool
    env = fw.env
    payload = b"important-database-page" * 100

    def corruption(env):
        yield from client.write_replicated(pool, "page42", payload, direct=True)
        victim = next(d for d in cluster.daemons.values() if "page42" in d.store)
        victim.store.corrupt("page42", 0, b"BITROT")
        print(f"corrupted one replica of page42 on osd.{victim.osd_id}")

        scrubber = Scrubber(env, cluster.monitor)
        light = yield from scrubber.scrub(pool, deep=False)
        print(f"light scrub: {'clean (missed it!)' if light.clean else 'caught it'}")
        deep = yield from scrubber.scrub(pool, deep=True, repair=True)
        print(f"deep scrub : {len(deep.inconsistencies)} inconsistency, "
              f"{deep.repaired} repaired")
        back = yield from client.read_replicated(pool, "page42", 0, len(payload))
        print(f"read-back  : {'byte-exact' if back == payload else 'STILL CORRUPT'}\n")

    env.process(corruption(env))
    env.run()

    # --- scenario 2: gray failure -----------------------------------------
    def p99_of(fw):
        job = FioJob("gray", "randread", bs=kib(4), iodepth=4, nrequests=150, size=mib(32))
        proc = fw.env.process(fw.run_fio(job))
        fw.env.run()
        return proc.value

    fw = build_framework(DELIBAK, seed=11)
    healthy = p99_of(fw)
    print(f"healthy cluster : mean {healthy.mean_latency_us():6.1f} us, "
          f"p99 {healthy.p99_latency_us():7.1f} us")

    fw = build_framework(DELIBAK, seed=11)
    injector = FaultInjector(fw.cluster)
    injector.slow_device(5, 50.0)
    sick = p99_of(fw)
    print(f"osd.5 gray-slow : mean {sick.mean_latency_us():6.1f} us, "
          f"p99 {sick.p99_latency_us():7.1f} us   <- tail blows up")

    fw.cluster.fail_osd(5)
    healed = p99_of(fw)
    print(f"osd.5 marked out: mean {healed.mean_latency_us():6.1f} us, "
          f"p99 {healed.p99_latency_us():7.1f} us   <- CRUSH routes around it")


if __name__ == "__main__":
    main()
