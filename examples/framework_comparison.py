#!/usr/bin/env python
"""Compare all four stack generations on the same workload grid.

Reproduces the paper's central comparison (Table II / Figs. 6-7 shape):
software Ceph, DeLiBA-1, DeLiBA-2, and DeLiBA-K on 4 kB and 128 kB
workloads, reporting latency at queue depth 1 and throughput at depth 4.

Run:  python examples/framework_comparison.py
"""

from repro.bench.tables import format_table
from repro.deliba import FRAMEWORKS, run_job_on
from repro.units import kib
from repro.workloads import FioJob

GENERATIONS = ("software-ceph", "deliba1", "deliba2", "delibak")
WORKLOADS = ("read", "write", "randread", "randwrite")


def main() -> None:
    # Latency at qd=1, 4 kB.
    rows = []
    for rw in WORKLOADS:
        row = [rw]
        for name in GENERATIONS:
            job = FioJob("cmp", rw, bs=kib(4), iodepth=1, nrequests=40)
            row.append(round(run_job_on(FRAMEWORKS[name], job).mean_latency_us(), 1))
        rows.append(row)
    print(format_table(["workload"] + [FRAMEWORKS[g].label for g in GENERATIONS], rows,
                       title="4 kB latency, queue depth 1 (us)"))

    # Throughput at qd=4, 4 kB and 128 kB.
    for bs in (kib(4), kib(128)):
        rows = []
        for rw in WORKLOADS:
            row = [rw]
            for name in GENERATIONS:
                job = FioJob("cmp", rw, bs=bs, iodepth=4, nrequests=100)
                row.append(round(run_job_on(FRAMEWORKS[name], job).throughput_mb_s(), 1))
            rows.append(row)
        print()
        print(format_table(["workload"] + [FRAMEWORKS[g].label for g in GENERATIONS], rows,
                           title=f"{bs // 1024} kB throughput, queue depth 4 (MB/s)"))

    dk = run_job_on(FRAMEWORKS["delibak"], FioJob("x", "randwrite", bs=kib(4), iodepth=4, nrequests=100))
    d2 = run_job_on(FRAMEWORKS["deliba2"], FioJob("x", "randwrite", bs=kib(4), iodepth=4, nrequests=100))
    print("\nDeLiBA-K vs DeLiBA-2, 4 kB random write: "
          f"{dk.throughput_mb_s() / d2.throughput_mb_s():.2f}x throughput "
          "(paper: 3.45x)")


if __name__ == "__main__":
    main()
