#!/usr/bin/env python
"""Section II in one table: the five Linux I/O APIs on the same device.

Runs an identical 4 kB random workload through blocking read/write,
POSIX AIO (glibc thread pool), libaio, mmap, and io_uring — all against
the same simulated DeLiBA-K backend — and reports per-API latency,
throughput, and host costs (syscalls, copies, context switches).  This
is the measurement behind the paper's argument that "existing system
calls do not always perform their intended functions effectively".

Run:  python examples/api_comparison.py
"""

from repro.api import LibAioEngine, MmapEngine, PosixAioEngine, SyncEngine, UringEngine
from repro.bench.tables import format_table
from repro.deliba import DELIBAK, build_framework
from repro.units import kib
from repro.workloads import FioJob

ENGINES = [
    ("read()/write()", SyncEngine),
    ("POSIX AIO", PosixAioEngine),
    ("libaio", LibAioEngine),
    ("mmap+msync", MmapEngine),
    ("io_uring", lambda e, k, b: UringEngine(e, k, b, num_instances=3)),
]


def main() -> None:
    rows = []
    for label, engine_factory in ENGINES:
        # Fresh full stack per API so host counters are isolated.
        fw = build_framework(DELIBAK)
        env, kernel = fw.env, fw.kernel
        engine = engine_factory(env, kernel, fw.blk)
        job = FioJob("api", "randwrite", bs=kib(4), iodepth=8, nrequests=120)
        bios = job.make_bios(fw.rng.stream("api-cmp"))
        proc = env.process(engine.run(bios, job.iodepth))
        env.run()
        result = proc.value
        rows.append(
            [
                label,
                round(result.mean_latency_us(), 1),
                round(result.throughput_mb_s(), 1),
                kernel.syscalls,
                kernel.context_switches,
                kernel.bytes_copied // 1024,
            ]
        )
    print(
        format_table(
            ["API", "lat-us", "MB/s", "syscalls", "ctx-switches", "copied-KiB"],
            rows,
            title="4 kB random writes, iodepth 8, 120 I/Os, identical backend",
        )
    )
    print(
        "\nio_uring (SQPOLL + fixed buffers) eliminates submission syscalls and"
        "\ndata copies entirely — the Section III-A argument, quantified."
    )


if __name__ == "__main__":
    main()
