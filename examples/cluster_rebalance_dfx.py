#!/usr/bin/env python
"""Cluster resize + DFX: swap the bucket accelerator as the cluster changes.

Paper Section IV-C: storage clusters shrink (disk failures) and grow
(new disks), and each cluster shape favors a different CRUSH bucket
accelerator — uniform for homogeneous pools, list for expanding ones,
tree for large/nested ones.  DeLiBA-K keeps all three as Reconfigurable
Modules and swaps them live over the MCAP without power-cycling.

This example: writes data, fails an OSD (CRUSH remaps + recovery), adds
capacity back, and performs the matching partial reconfigurations,
reporting data movement and reconfiguration times.

Run:  python examples/cluster_rebalance_dfx.py
"""

from repro.fpga import AlveoU280, DfxController, build_deliba_k_rms, pr_verify
from repro.osd import ClusterSpec, build_cluster
from repro.sim import Environment
from repro.units import to_ms


def main() -> None:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=4))
    pool = cluster.create_replicated_pool("rbd", pg_num=64, size=3)
    client = cluster.new_client()

    # The FPGA side: one reconfigurable partition in SLR0, three RMs.
    device = AlveoU280()
    partition = build_deliba_k_rms(device)
    dfx = DfxController(env, device, partition)
    problems = pr_verify(partition)
    print(f"pr_verify: {'OK' if not problems else problems}")

    def scenario(env):
        # Homogeneous cluster -> uniform bucket accelerator.
        yield from dfx.reconfigure("rm3_uniform")
        print(f"[{to_ms(env.now):8.1f} ms] loaded {partition.active} "
              "(homogeneous cluster)")

        # Write objects.
        for i in range(30):
            yield from client.write_replicated(pool, f"obj{i}", bytes([i]) * 1024)
        print(f"[{to_ms(env.now):8.1f} ms] wrote 30 objects, 3x replicated")

        # A disk dies: cluster shrinks, CRUSH remaps, recovery re-replicates.
        victim = client.compute_placement(pool, "obj0")[0]
        cluster.fail_osd(victim)
        print(f"[{to_ms(env.now):8.1f} ms] osd.{victim} failed "
              f"(epoch {cluster.osdmap.epoch})")
        stats = yield from cluster.monitor.recover_pool(pool, cluster.any_live_daemon())
        print(f"[{to_ms(env.now):8.1f} ms] recovery: {stats.objects_recovered} objects "
              f"re-replicated, {stats.bytes_moved} bytes moved")

        # Shrinking/heterogeneous cluster -> tree bucket accelerator.
        swap_ns = dfx.reconfiguration_ns("rm2_tree")
        yield from dfx.reconfigure("rm2_tree")
        print(f"[{to_ms(env.now):8.1f} ms] DFX swap to {partition.active} "
              f"took {to_ms(swap_ns):.1f} ms (static region kept running)")

        # Expansion: new device joins -> list bucket accelerator, and
        # backfill moves the remapped objects onto the new OSD.
        new = cluster.add_osd("server0")
        yield from dfx.reconfigure("rm1_list")
        stats = yield from cluster.monitor.recover_pool(pool, cluster.any_live_daemon())
        print(f"[{to_ms(env.now):8.1f} ms] added osd.{new}; loaded "
              f"{partition.active}; backfill moved {stats.bytes_moved} bytes")

        # Everything still readable after all the churn.
        ok = 0
        for i in range(30):
            data = yield from client.read_replicated(pool, f"obj{i}", 0, 1024)
            ok += data == bytes([i]) * 1024
        print(f"[{to_ms(env.now):8.1f} ms] verified {ok}/30 objects intact")
        print(f"total reconfigurations: {dfx.reconfigurations}")

    env.process(scenario(env))
    env.run()


if __name__ == "__main__":
    main()
