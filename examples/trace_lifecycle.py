#!/usr/bin/env python
"""Trace the six-stage I/O lifecycle of Figure 2.

The paper names detailed profiling/tracing of the erasure-coding and
replication path as future work; the simulation provides it today.
Runs 4 kB random writes through DeLiBA-K with the tracer enabled and
prints the mean per-stage latency contribution:

  rings    - io_uring submission/completion handling
  dmq      - the modified multi-queue block layer
  qdma     - descriptor + DMA transfer over PCIe
  accel    - replication/EC accelerator compute
  fabric   - network + OSD service
  complete - completion delivery back to the application

Run:  python examples/trace_lifecycle.py
"""

from repro.deliba import DELIBAK, build_framework
from repro.units import kib
from repro.workloads import FioJob


def main() -> None:
    fw = build_framework(DELIBAK, trace=True)
    job = FioJob("trace", "randwrite", bs=kib(4), iodepth=1, nrequests=50)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    result = proc.value

    print(f"{result.ios} writes, mean end-to-end {result.mean_latency_us():.1f} us\n")
    print("six-stage lifecycle breakdown (paper Fig. 2):")
    print(fw.tracer.breakdown_table())
    fabric = fw.tracer.summary().get("fabric", 0.0)
    print(f"\nnetwork+OSD (fabric) dominates at {fabric:.1f} us — the part no host-side")
    print("optimization can remove, which is why DeLiBA offloads the rest.")


if __name__ == "__main__":
    main()
