#!/usr/bin/env python
"""Quickstart: run fio-style I/O through the full DeLiBA-K stack.

Builds the paper's testbed (one client with an Alveo U280 + io_uring
host stack, two storage servers with 16 OSDs each on 10 GbE), runs a
4 kB random-read job, and prints latency/throughput — the basic loop
behind every experiment in the paper.

Run:  python examples/quickstart.py
"""

from repro.deliba import DELIBAK, build_framework
from repro.units import kib
from repro.workloads import FioJob


def main() -> None:
    fw = build_framework(DELIBAK)
    print(f"cluster: {len(fw.cluster.daemons)} OSDs on {len(fw.cluster.server_hosts)} servers")
    print(f"stack:   api={fw.config.api}, driver={fw.config.driver}, "
          f"tcp={fw.config.client_stack.name}, accel={fw.config.accel_impl}")

    job = FioJob("quickstart", "randread", bs=kib(4), iodepth=4, nrequests=200)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    result = proc.value

    print(f"\nfio {job.rw} bs={job.bs} iodepth={job.iodepth} ({result.ios} I/Os)")
    print(f"  mean latency : {result.mean_latency_us():8.1f} us")
    print(f"  throughput   : {result.throughput_mb_s():8.1f} MB/s")
    print(f"  IOPS         : {result.kiops() * 1000:8.0f}")
    print(f"  syscalls saved by SQPOLL io_uring: {fw.engine.total_syscalls_saved()}")
    print("  QDMA descriptors processed: "
          f"{sum(q.descriptors_processed for q in fw.qdma._queues.values())}")


if __name__ == "__main__":
    main()
