#!/usr/bin/env python
"""CMAC-only network monitoring (paper Section III-B).

The UIFD driver exposes the CMAC block directly, so small-data-volume
use cases — like datacenter network monitoring — can run without the
QDMA machinery.  This example attaches a CMAC-fed flow monitor to the
cluster switch while a mixed workload runs, then prints the top talkers.

Run:  python examples/network_monitoring.py
"""

from repro.deliba import DELIBAK, build_framework
from repro.driver import CmacNetworkMonitor
from repro.units import kib
from repro.workloads import FioJob


def main() -> None:
    fw = build_framework(DELIBAK)
    monitor = CmacNetworkMonitor(fw.env, fw.cluster.network)
    monitor.attach()

    job = FioJob("monitored", "randrw", bs=kib(8), iodepth=4, nrequests=150, rwmixread=0.6)
    proc = fw.env.process(fw.run_fio(job))
    fw.env.run()
    result = proc.value

    print(f"workload: {result.ios} mixed I/Os, {result.throughput_mb_s():.1f} MB/s\n")
    print(f"flows observed by the CMAC monitor ({monitor.total_frames} frames, "
          f"{monitor.cmac.frames_rx} mirrored through the MAC):\n")
    print(monitor.report())
    util = fw.cluster.network.utilization_report(fw.env.now)
    busiest = max(util.items(), key=lambda kv: kv[1])
    print(f"\nbusiest port: {busiest[0]} at {busiest[1]:.2f} Gb/s")
    monitor.detach()


if __name__ == "__main__":
    main()
