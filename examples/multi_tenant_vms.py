#!/usr/bin/env python
"""Multi-tenancy: several VM virtual disks over one FPGA via SR-IOV.

The lack of multi-tenancy was one of the three problems DeLiBA-K fixed
(paper Section III): QDMA exposes virtual functions so every tenant VM
gets its own queue sets on the shared card.  This example runs three
tenants concurrently, each with its own RBD image, UIFD driver instance
(bound to a distinct VF), block layer, and io_uring engine — and shows
that per-tenant throughput degrades gracefully rather than serializing.

Run:  python examples/multi_tenant_vms.py
"""

from repro.api import UringEngine
from repro.blk import BlockLayer, DMQ_CONFIG
from repro.deliba import DELIBAK, build_framework
from repro.driver import UifdConfig, UifdDriver
from repro.host import HostKernel
from repro.osd import RBDImage
from repro.units import kib, mib
from repro.workloads import FioJob


def main() -> None:
    base = build_framework(DELIBAK)
    env = base.env
    cluster = base.cluster
    qdma = base.qdma

    tenants = []
    for vf in (1, 2, 3):
        client = cluster.new_client(f"vm{vf}")
        image = RBDImage(f"vm{vf}-disk", mib(64), base.pool, client, direct=True)
        kernel = HostKernel(env)
        driver = UifdDriver(
            env,
            kernel,
            image,
            UifdConfig(),
            qdma=qdma,
            crush_accel=base.accelerators["crush"],
            ec_accel=base.accelerators["ec"],
            function=vf,  # SR-IOV virtual function for this VM
            hardware=True,
        )
        blk = BlockLayer(env, kernel, driver.queue_rq, DMQ_CONFIG)
        engine = UringEngine(env, kernel, blk, num_instances=2)
        tenants.append((vf, engine))

    job = FioJob("tenant", "randwrite", bs=kib(4), iodepth=4, nrequests=150, size=mib(32))
    procs = {
        vf: env.process(engine.run(job.make_bios(cluster.rng.stream(f"vm{vf}")), job.iodepth))
        for vf, engine in tenants
    }
    env.run()

    print(f"QDMA queue sets in use: {qdma.queues_in_use} "
          f"(max {2048}); one replication queue per VF")
    total = 0.0
    for vf, proc in procs.items():
        result = proc.value
        vf_queues = len(qdma.queues_of_function(vf))
        print(f"  VM{vf}: {result.throughput_mb_s():7.1f} MB/s, "
              f"{result.mean_latency_us():6.1f} us mean latency, "
              f"{vf_queues} queue set(s) on VF{vf}")
        total += result.throughput_mb_s()
    print(f"aggregate: {total:.1f} MB/s across 3 concurrent tenants")


if __name__ == "__main__":
    main()
