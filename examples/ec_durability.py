#!/usr/bin/env python
"""Erasure-coding durability: survive m device failures and rebuild.

Demonstrates the EC substrate end to end: client-side Reed-Solomon
encoding (the computation DeLiBA-K's RS accelerator offloads), shard
placement via CRUSH indep rules, degraded reads after killing m OSDs,
and full shard reconstruction — with byte-exact integrity checks.

Run:  python examples/ec_durability.py
"""

from repro.osd import ClusterSpec, build_cluster, shard_object_name
from repro.sim import Environment
from repro.units import to_ms


def main() -> None:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(num_server_hosts=2, osds_per_host=6))
    k, m = 4, 2
    pool = cluster.create_erasure_pool("ecpool", pg_num=64, k=k, m=m)
    client = cluster.new_client()
    payload = bytes(range(256)) * 64  # 16 kB object

    def scenario(env):
        # Write: the client encodes k+m shards and addresses each OSD
        # directly (DeLiBA's datapath topology).
        yield from client.write_ec(pool, "dataset", payload, direct=True)
        acting = client.compute_placement(pool, "dataset")
        print(f"[{to_ms(env.now):7.2f} ms] wrote {len(payload)} B as "
              f"{k}+{m} shards on OSDs {acting}")
        overhead = (k + m) / k
        print(f"          storage overhead {overhead:.2f}x "
              "(vs 3.00x for 3-way replication)")

        # Kill m OSDs holding shards.
        for osd in acting[:m]:
            cluster.fail_osd(osd)
        print(f"[{to_ms(env.now):7.2f} ms] failed OSDs {acting[:m]} "
              f"({m} shards lost — the design limit)")

        # Degraded read: surviving k shards reconstruct the object.
        data = yield from client.read_ec(pool, "dataset", len(payload), direct=True)
        assert data == payload, "degraded read corrupted data!"
        print(f"[{to_ms(env.now):7.2f} ms] degraded read OK (byte-exact)")

        # Recovery: reconstruct the lost shards onto the new acting set.
        stats = yield from cluster.monitor.recover_pool(pool, cluster.any_live_daemon())
        print(f"[{to_ms(env.now):7.2f} ms] recovery moved {stats.bytes_moved} B "
              f"for {stats.objects_recovered} object(s)")

        # All k+m shards exist again on live OSDs.
        live = [d for d in cluster.daemons.values() if cluster.osdmap.osds[d.osd_id].up]
        shards_present = sum(
            1
            for rank in range(k + m)
            if any(shard_object_name("dataset", rank) in d.store for d in live)
        )
        print(f"[{to_ms(env.now):7.2f} ms] shards on live OSDs: {shards_present}/{k + m}")

        data = yield from client.read_ec(pool, "dataset", len(payload), direct=True)
        assert data == payload
        print(f"[{to_ms(env.now):7.2f} ms] post-recovery read OK")

    env.process(scenario(env))
    env.run()


if __name__ == "__main__":
    main()
